(* Tests for the effects-based scheduler: fiber quanta, scripts, stalls,
   solo-run budgets, operation recording. *)

open Era_sim
module Sched = Era_sched.Sched
module Mem = Era_sched.Mem

let setup ?(nthreads = 2) strategy =
  let mon = Monitor.create ~mode:`Record ~trace:true () in
  let heap = Heap.create mon in
  (Sched.create ~nthreads strategy heap, mon)

let test_round_robin_completes () =
  let sched, _ = setup Sched.Round_robin in
  let log = ref [] in
  Sched.spawn sched ~tid:0 (fun ctx ->
      for _ = 1 to 3 do
        Sched.yield ctx;
        log := 0 :: !log
      done);
  Sched.spawn sched ~tid:1 (fun ctx ->
      for _ = 1 to 3 do
        Sched.yield ctx;
        log := 1 :: !log
      done);
  Alcotest.(check bool) "all finished" true (Sched.run sched = Sched.All_finished);
  Alcotest.(check (list int)) "perfect alternation" [ 1; 0; 1; 0; 1; 0 ] !log;
  Alcotest.(check int) "steps counted" 4 (Sched.steps_of sched 0)

let test_yield_is_one_quantum () =
  (* Each quantum runs exactly the code between two yields. *)
  let sched, _ = setup ~nthreads:1 Sched.Round_robin in
  let trace = ref [] in
  Sched.spawn sched ~tid:0 (fun ctx ->
      trace := "a" :: !trace;
      Sched.yield ctx;
      trace := "b" :: !trace;
      Sched.yield ctx;
      trace := "c" :: !trace);
  ignore (Sched.run sched);
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !trace)

let test_script_run_until () =
  let sched, mon = setup (Sched.Script [
      Sched.Run_until_label (0, "checkpoint");
      Sched.Finish 1;
      Sched.Finish 0;
    ])
  in
  let order = ref [] in
  Sched.spawn sched ~tid:0 (fun ctx ->
      order := "t0-pre" :: !order;
      Sched.label ctx "checkpoint";
      Sched.yield ctx;
      order := "t0-post" :: !order);
  Sched.spawn sched ~tid:1 (fun ctx ->
      Sched.yield ctx;
      order := "t1" :: !order);
  Alcotest.(check bool) "finished" true (Sched.run sched = Sched.All_finished);
  Alcotest.(check (list string))
    "t1 ran while t0 was parked at the label"
    [ "t0-pre"; "t1"; "t0-post" ]
    (List.rev !order);
  Alcotest.(check bool) "label recorded" true
    (List.exists
       (function Event.Label { name = "checkpoint"; _ } -> true | _ -> false)
       (Monitor.trace mon))

let test_script_run_steps () =
  let sched, _ =
    setup (Sched.Script [ Sched.Run (0, 2); Sched.Run (1, 1); Sched.Finish_all ])
  in
  let log = ref [] in
  let body tid ctx =
    for _ = 1 to 3 do
      Sched.yield ctx;
      log := tid :: !log
    done
  in
  Sched.spawn sched ~tid:0 (body 0);
  Sched.spawn sched ~tid:1 (body 1);
  ignore (Sched.run sched);
  Alcotest.(check (list int)) "quantum accounting" [ 0; 0; 1; 0; 1; 1 ]
    (List.rev !log)

let test_stall_skips_thread () =
  let sched, _ = setup Sched.Round_robin in
  let ran1 = ref false in
  Sched.spawn sched ~tid:0 (fun ctx -> Sched.yield ctx);
  Sched.spawn sched ~tid:1 (fun ctx ->
      Sched.yield ctx;
      ran1 := true);
  Sched.stall sched 1;
  Alcotest.(check bool) "stalled remains" true (Sched.run sched = Sched.No_runnable);
  Alcotest.(check bool) "t1 never ran" false !ran1;
  Sched.unstall sched 1;
  Alcotest.(check bool) "resumes" true (Sched.run sched = Sched.All_finished);
  Alcotest.(check bool) "t1 ran" true !ran1

let test_finish_bounded_flags_progress () =
  let sched, mon =
    setup ~nthreads:1 (Sched.Script [ Sched.Finish_bounded (0, 10) ])
  in
  Sched.spawn sched ~tid:0 (fun ctx ->
      while true do
        Sched.yield ctx
      done);
  ignore (Sched.run sched);
  Alcotest.(check bool) "progress violation" true
    (List.exists
       (function
         | Event.Violation { kind = Event.Progress_failure; _ } -> true
         | _ -> false)
       (Monitor.violations mon))

let test_random_deterministic () =
  let run seed =
    let sched, mon = setup (Sched.Random (Rng.create seed)) in
    let body _tid ctx =
      for k = 1 to 5 do
        Mem.fence ctx ~event:(Event.Note (string_of_int k)) ()
      done
    in
    Sched.spawn sched ~tid:0 (body 0);
    Sched.spawn sched ~tid:1 (body 1);
    ignore (Sched.run sched);
    List.map Event.to_string (Monitor.trace mon)
  in
  Alcotest.(check (list string)) "same seed, same schedule" (run 5) (run 5);
  Alcotest.(check bool) "different seeds diverge" true
    (run 5 <> run 6 || run 5 <> run 7)

(* ------------------------------------------------------------------ *)
(* Golden determinism traces                                           *)
(*                                                                     *)
(* Captured from the build before the scratch-buffer pick path and the *)
(* monitor fast path landed. A seeded Random run must reproduce both   *)
(* the per-quantum tid sequence (same Rng draws) and the monitor event *)
(* trace (same observed behaviour) bit for bit.                        *)
(* ------------------------------------------------------------------ *)

(* Staggered finish times shrink the candidate set as threads finish,
   exercising pick_random's index arithmetic. *)
let golden_random_run seed =
  let mon = Monitor.create ~mode:`Record ~trace:true () in
  let heap = Heap.create mon in
  let sched = Sched.create ~nthreads:3 (Sched.Random (Rng.create seed)) heap in
  let quanta = ref [] in
  let body tid iters ctx =
    for k = 1 to iters do
      let w = Mem.alloc ctx ~key:((tid * 100) + k) in
      quanta := tid :: !quanta;
      Mem.write ctx ~via:w ~field:0 Word.Null;
      quanta := tid :: !quanta;
      Mem.retire ctx w;
      quanta := tid :: !quanta
    done
  in
  Sched.spawn sched ~tid:0 (body 0 3);
  Sched.spawn sched ~tid:1 (body 1 5);
  Sched.spawn sched ~tid:2 (body 2 2);
  ignore (Sched.run sched);
  (List.rev !quanta, List.map Event.to_string (Monitor.trace mon))

let test_golden_quanta_seed11 () =
  let tids, events = golden_random_run 11 in
  Alcotest.(check (list int)) "tid quantum trace (seed 11)"
    [ 2; 2; 2; 2; 0; 0; 0; 2; 0; 1; 1; 2; 0; 1; 1;
      1; 1; 0; 1; 1; 1; 1; 1; 1; 0; 1; 1; 1; 0; 0 ]
    tids;
  Alcotest.(check (list string)) "event trace (seed 11)"
    [
      "T2 alloc &0#0 key=201"; "T2 write &0#0.f0"; "T2 retire &0#0";
      "T2 alloc &1#1 key=202"; "T0 alloc &2#2 key=1"; "T0 write &2#2.f0";
      "T0 retire &2#2"; "T2 write &1#1.f0"; "T0 alloc &3#3 key=2";
      "T1 alloc &4#4 key=101"; "T1 write &4#4.f0"; "T2 retire &1#1";
      "T0 write &3#3.f0"; "T1 retire &4#4"; "T1 alloc &5#5 key=102";
      "T1 write &5#5.f0"; "T1 retire &5#5"; "T0 retire &3#3";
      "T1 alloc &6#6 key=103"; "T1 write &6#6.f0"; "T1 retire &6#6";
      "T1 alloc &7#7 key=104"; "T1 write &7#7.f0"; "T1 retire &7#7";
      "T0 alloc &8#8 key=3"; "T1 alloc &9#9 key=105"; "T1 write &9#9.f0";
      "T1 retire &9#9"; "T0 write &8#8.f0"; "T0 retire &8#8";
    ]
    events

let test_golden_quanta_seed12 () =
  let tids, events = golden_random_run 12 in
  Alcotest.(check (list int)) "tid quantum trace (seed 12)"
    [ 0; 0; 2; 2; 0; 0; 0; 0; 2; 0; 2; 0; 0; 2; 2;
      1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1 ]
    tids;
  Alcotest.(check int) "event count (seed 12)" 30 (List.length events);
  Alcotest.(check int) "event fingerprint (seed 12)" 547975592
    (Hashtbl.hash (String.concat "\n" events))

(* The monitor fast path skips building Access/Key_read events when
   nothing observes them — so attaching any observer (trace or hook)
   must yield the identical event sequence. *)
let test_hook_sees_trace_sequence () =
  let run ~use_hook =
    let collected = ref [] in
    let mon = Monitor.create ~mode:`Record ~trace:(not use_hook) () in
    if use_hook then
      Monitor.subscribe mon (fun _time ev ->
          collected := Event.to_string ev :: !collected);
    let heap = Heap.create mon in
    let sched =
      Sched.create ~nthreads:2 (Sched.Random (Rng.create 21)) heap
    in
    let body tid ctx =
      for k = 1 to 4 do
        let w = Mem.alloc ctx ~key:((tid * 10) + k) in
        Mem.write ctx ~via:w ~field:0 (Word.int k);
        ignore (Mem.read ctx ~via:w ~field:0);
        Mem.retire ctx w
      done
    in
    Sched.spawn sched ~tid:0 (body 0);
    Sched.spawn sched ~tid:1 (body 1);
    ignore (Sched.run sched);
    if use_hook then List.rev !collected
    else List.map Event.to_string (Monitor.trace mon)
  in
  let via_trace = run ~use_hook:false in
  let via_hook = run ~use_hook:true in
  Alcotest.(check bool) "trace nonempty" true (via_trace <> []);
  Alcotest.(check (list string))
    "hook sees exactly the traced sequence" via_trace via_hook

let test_crash_captured () =
  let sched, _ = setup ~nthreads:1 Sched.Round_robin in
  Sched.spawn sched ~tid:0 (fun ctx ->
      Sched.yield ctx;
      failwith "boom");
  ignore (Sched.run sched);
  Alcotest.(check bool) "crash recorded" true
    (match Sched.thread_outcome sched 0 with
    | Sched.Crashed (Failure msg) -> String.equal msg "boom"
    | _ -> false)

let test_run_op_records () =
  let sched, mon = setup ~nthreads:1 Sched.Round_robin in
  Sched.spawn sched ~tid:0 (fun ctx ->
      ignore
        (Sched.run_op ctx
           { Event.name = "insert"; args = [ 7 ] }
           (fun () ->
             Sched.yield ctx;
             Event.R_bool true)));
  ignore (Sched.run sched);
  let h = Era_history.History.of_monitor mon in
  Alcotest.(check int) "one op" 1 (List.length h);
  let r = List.hd h in
  Alcotest.(check string) "name" "insert" r.Era_history.History.op.Event.name;
  Alcotest.(check bool) "completed" true
    (r.Era_history.History.result = Some (Event.R_bool true))

let test_external_ctx () =
  (* Data-structure code runs outside the scheduler during setup. *)
  let sched, mon = setup ~nthreads:1 Sched.Round_robin in
  let ext = Sched.external_ctx sched ~tid:0 in
  let w = Mem.alloc ext ~key:3 in
  Mem.write ext ~via:w ~field:0 Word.Null;
  Alcotest.(check int) "events recorded" 2 (Monitor.time mon)

let test_mem_ops_are_steps () =
  (* Every Mem access is exactly one scheduling quantum. *)
  let sched, _ = setup Sched.Round_robin in
  let log = ref [] in
  Sched.spawn sched ~tid:0 (fun ctx ->
      let w = Mem.alloc ctx ~key:0 in
      log := "alloc0" :: !log;
      Mem.write ctx ~via:w ~field:0 Word.Null;
      log := "write0" :: !log);
  Sched.spawn sched ~tid:1 (fun ctx ->
      let _ = Mem.alloc ctx ~key:1 in
      log := "alloc1" :: !log;
      Sched.yield ctx;
      log := "done1" :: !log);
  ignore (Sched.run sched);
  Alcotest.(check (list string))
    "interleaved at access granularity"
    [ "alloc0"; "alloc1"; "write0"; "done1" ]
    (List.rev !log)

let () =
  Alcotest.run "era_sched"
    [
      ( "scheduler",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin_completes;
          Alcotest.test_case "quantum boundaries" `Quick
            test_yield_is_one_quantum;
          Alcotest.test_case "script run_until label" `Quick
            test_script_run_until;
          Alcotest.test_case "script step counts" `Quick test_script_run_steps;
          Alcotest.test_case "stall/unstall" `Quick test_stall_skips_thread;
          Alcotest.test_case "bounded solo run" `Quick
            test_finish_bounded_flags_progress;
          Alcotest.test_case "random determinism" `Quick
            test_random_deterministic;
          Alcotest.test_case "golden schedule seed 11" `Quick
            test_golden_quanta_seed11;
          Alcotest.test_case "golden schedule seed 12" `Quick
            test_golden_quanta_seed12;
          Alcotest.test_case "hook sees trace sequence" `Quick
            test_hook_sees_trace_sequence;
          Alcotest.test_case "crash capture" `Quick test_crash_captured;
          Alcotest.test_case "run_op records history" `Quick
            test_run_op_records;
          Alcotest.test_case "external ctx" `Quick test_external_ctx;
          Alcotest.test_case "mem ops are steps" `Quick test_mem_ops_are_steps;
        ] );
    ]

#!/bin/sh
# Negative-compilation battery for the typestate guard (Smr_intf.GUARD).
#
# well_typed.ml is the positive control: the legal lifecycle must
# compile, otherwise the rejections below would be vacuous. Every
# bad_*.ml must FAIL to compile, and its stderr must contain every line
# of the matching bad_*.expected (stable substrings of the type error —
# full compiler messages carry locations and formatting that vary
# across versions, so they are grepped, not diffed).
#
# Runs from the dune build directory test/typestate_rejects/; the
# library cmis live in the sibling .objs trees.
set -u

INCS="-I ../../lib/smr/.era_smr.objs/byte \
      -I ../../lib/sim/.era_sim.objs/byte \
      -I ../../lib/sched/.era_sched.objs/byte"
FMT_DIR=$(ocamlfind query fmt 2>/dev/null || true)
if [ -n "$FMT_DIR" ]; then INCS="$INCS -I $FMT_DIR"; fi

status=0
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

compile () {
  # -bin-annot off, objects into the scratch dir: the battery must not
  # pollute the build tree dune manages.
  ocamlc -c $INCS -color never -o "$tmp/$(basename "$1" .ml)" "$1" \
    2>"$tmp/err"
}

if compile well_typed.ml; then
  echo "ok: well_typed.ml compiles (positive control)"
else
  echo "FAIL: well_typed.ml must compile; stderr:" >&2
  cat "$tmp/err" >&2
  status=1
fi

for bad in bad_*.ml; do
  name=$(basename "$bad" .ml)
  if compile "$bad"; then
    echo "FAIL: $bad compiled; the typestate no longer rejects it" >&2
    status=1
    continue
  fi
  missing=0
  while IFS= read -r want; do
    [ -n "$want" ] || continue
    if ! grep -qF -- "$want" "$tmp/err"; then
      echo "FAIL: $bad: error does not mention '$want'; stderr:" >&2
      cat "$tmp/err" >&2
      missing=1
    fi
  done < "$name.expected"
  if [ "$missing" -eq 0 ]; then
    echo "ok: $bad rejected with the expected type error"
  else
    status=1
  fi
done

exit $status

(* Retiring from outside an operation boundary: [stage_retire] demands a
   [`Pinned] guard, and a quiescent guard is [`Unpinned]. Must not
   typecheck. *)

module G = Era_smr.Ebr.Guard

let bad (s : Era_smr.Ebr.tctx) (w : Era_sim.Word.t) =
  let u = G.make s in
  ignore (G.retire (G.stage_retire u w))

(* Flushing limbo lists while an operation is still open: [quiesce]
   demands an [`Unpinned] guard. Must not typecheck. *)

module G = Era_smr.Ebr.Guard

let bad (s : Era_smr.Ebr.tctx) =
  G.with_pin (G.make s) (fun g -> G.quiesce g)

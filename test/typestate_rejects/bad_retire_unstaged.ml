(* Committing a retirement that was never staged: [retire] demands
   [`Retire_ready], which only [stage_retire] can produce. Must not
   typecheck. *)

module G = Era_smr.Ebr.Guard

let bad (s : Era_smr.Ebr.tctx) =
  G.with_pin (G.make s) (fun g -> ignore (G.retire g))

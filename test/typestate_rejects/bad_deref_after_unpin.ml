(* Dereferencing after closing the operation boundary: [unpin] returns
   an [`Unpinned] guard, which [read] rejects. Must not typecheck. *)

module G = Era_smr.Ebr.Guard

let bad (s : Era_smr.Ebr.tctx) (via : Era_sim.Word.t) =
  let g = G.pin (G.make s) in
  let u = G.unpin g in
  ignore (G.read u ~via ~field:0)

(* Positive control: the full legal lifecycle compiles. If this file
   stops compiling, the battery's rejections below prove nothing. *)

module G = Era_smr.Ebr.Guard

let lifecycle (s : Era_smr.Ebr.tctx) (via : Era_sim.Word.t) =
  let u = G.make s in
  let result =
    G.with_pin u (fun g ->
        let w = G.read g ~via ~field:0 in
        let g = G.retire (G.stage_retire g w) in
        G.read_key g ~via)
  in
  G.quiesce u;
  result

let manual_boundary (s : Era_smr.Ebr.tctx) (via : Era_sim.Word.t) =
  let g = G.pin (G.make s) in
  let k = G.read_key g ~via in
  let u = G.unpin g in
  G.quiesce u;
  k

(* Observability layer (lib/obs): tracer ring semantics, Chrome
   trace-event JSON shape (golden-checked against a committed Perfetto
   trace of the Figure 2 HP run), metrics-registry round-trips, the
   hook-vs-trace event-count invariant, and explore heartbeat totals. *)

module Tracer = Era_obs.Tracer
module Registry = Era_obs.Registry
module Sim_trace = Era_obs.Sim_trace
module Json = Era_metrics.Json
module Monitor = Era_sim.Monitor
module Event = Era_sim.Event
module Sched = Era_sched.Sched
module Ex = Era_explore.Explore
module App = Era.Applicability

let scheme name =
  match Era_smr.Registry.find name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scheme %s" name

let parse_json s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "invalid JSON: %s" e

let trace_events j =
  match Option.bind (Json.member "traceEvents" j) Json.to_list with
  | Some evs -> evs
  | None -> Alcotest.fail "missing traceEvents array"

let ph e = Option.bind (Json.member "ph" e) Json.to_str
let str_field k e = Option.bind (Json.member k e) Json.to_str
let int_field k e = Option.bind (Json.member k e) Json.to_int

(* ------------------------------------------------------------------ *)
(* Tracer ring buffer                                                  *)
(* ------------------------------------------------------------------ *)

let test_ring_overflow () =
  let tr = Tracer.create ~capacity:4 () in
  for i = 1 to 6 do
    Tracer.instant tr ~ts:i ~tid:0 ~cat:"t" (Fmt.str "e%d" i)
  done;
  Alcotest.(check int) "length capped at capacity" 4 (Tracer.length tr);
  Alcotest.(check int) "two oldest dropped" 2 (Tracer.dropped tr);
  let j = Tracer.to_json tr in
  let names =
    List.filter_map
      (fun e -> if ph e = Some "i" then str_field "name" e else None)
      (trace_events j)
  in
  Alcotest.(check (list string))
    "survivors are the newest, in order"
    [ "e3"; "e4"; "e5"; "e6" ] names;
  match Option.bind (Json.member "droppedEvents" j) Json.to_int with
  | Some 2 -> ()
  | other ->
    Alcotest.failf "droppedEvents = %s"
      (match other with Some n -> string_of_int n | None -> "absent")

let test_ring_no_drop () =
  let tr = Tracer.create ~capacity:8 () in
  Tracer.begin_span tr ~ts:1 ~tid:3 ~cat:"op" "insert";
  Tracer.end_span tr ~ts:5 ~tid:3;
  Tracer.counter tr ~ts:2 "nodes" [ ("active", 7); ("retired", 1) ];
  Alcotest.(check int) "length" 3 (Tracer.length tr);
  Alcotest.(check int) "nothing dropped" 0 (Tracer.dropped tr);
  let j = Tracer.to_json tr in
  Alcotest.(check bool)
    "complete traces omit droppedEvents" true
    (Json.member "droppedEvents" j = None);
  (* Export preserves insertion order (chronological for producers). *)
  let phs = List.filter_map ph (trace_events j) in
  Alcotest.(check (list string)) "phases in order" [ "B"; "E"; "C" ] phs

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_round_trip () =
  let r = Registry.create () in
  let c = Registry.counter r "ops" ~labels:[ ("scheme", "hp") ] in
  Registry.add c 41;
  Registry.incr c;
  Registry.set (Registry.gauge r "occupancy") 0.75;
  let h = Registry.histogram r "backlog" in
  List.iter (Registry.observe h) [ 0; 1; 2; 3; 900 ];
  let snap = Registry.snapshot r in
  let json = parse_json (Registry.to_string r) in
  (match Registry.metrics_of_json json with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok decoded ->
    Alcotest.(check bool) "snapshot round-trips" true (decoded = snap));
  match Registry.find r "ops" ~labels:[ ("scheme", "hp") ] with
  | Some { Registry.value = Registry.Counter 42; _ } -> ()
  | _ -> Alcotest.fail "labelled counter lookup"

let test_registry_dedup_and_kinds () =
  let r = Registry.create () in
  let a = Registry.counter r "n" in
  let b = Registry.counter r "n" in
  Registry.incr a;
  Registry.incr b;
  Alcotest.(check int) "same instrument" 2 (Registry.value a);
  (* Same name under different labels is a distinct instrument... *)
  let c = Registry.counter r "n" ~labels:[ ("d", "1") ] in
  Alcotest.(check int) "distinct under labels" 0 (Registry.value c);
  (* ...but re-registering under a different kind is a bug. *)
  match Registry.gauge r "n" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted"

let test_histogram_buckets () =
  let r = Registry.create () in
  let h = Registry.histogram r "h" in
  (* bucket b covers 2^(b-1) <= v < 2^b; v <= 0 lands in bucket 0 *)
  List.iter (Registry.observe h) [ -5; 0; 1; 2; 3; 4; 7; 8 ];
  match Registry.find r "h" with
  | Some { Registry.value = Registry.Histogram { count; sum; buckets }; _ } ->
    Alcotest.(check int) "count" 8 count;
    Alcotest.(check int) "sum" 20 sum;
    Alcotest.(check (list (pair int int)))
      "log2 buckets"
      [ (0, 2); (1, 1); (2, 2); (3, 2); (4, 1) ]
      buckets
  | _ -> Alcotest.fail "histogram lookup"

(* ------------------------------------------------------------------ *)
(* Figure 2 HP: golden Perfetto trace                                  *)
(* ------------------------------------------------------------------ *)

let figure2_hp_trace () =
  let tr = Tracer.create () in
  let r = Era.Figure2.run ~tracer:tr (scheme "hp") in
  (match r.Era.Figure2.outcome with
  | Era.Figure2.Unsafe _ -> ()
  | _ -> Alcotest.fail "figure2 hp should be unsafe");
  tr

let test_figure2_hp_golden () =
  let got = Tracer.to_string (figure2_hp_trace ()) in
  let ic = open_in_bin "golden/figure2_hp_trace.json" in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if got <> want then
    Alcotest.failf
      "trace differs from golden (got %d bytes, want %d) — if the change \
       is intentional, regenerate with:\n\
      \  dune exec bin/era_cli.exe -- trace figure2 --scheme hp \
       --out test/golden/figure2_hp_trace.json"
      (String.length got) (String.length want)

let test_figure2_hp_schema () =
  let tr = figure2_hp_trace () in
  Alcotest.(check int) "nothing dropped" 0 (Tracer.dropped tr);
  let j = Tracer.to_json tr in
  let evs = trace_events j in
  (* Metadata names the process and every track, and comes first. *)
  (match evs with
  | m :: _ when ph m = Some "M" -> ()
  | _ -> Alcotest.fail "metadata events must lead");
  let thread_names =
    List.filter_map
      (fun e ->
        if ph e = Some "M" && str_field "name" e = Some "thread_name" then
          Option.bind (Json.member "args" e) (str_field "name")
        else None)
      evs
  in
  Alcotest.(check bool)
    "stalling inserter track is named" true
    (List.mem "T1 insert(58) [stalls]" thread_names);
  (* The paper's violation: a stale value used by the stalled inserter —
     an instant on the faulting thread's track (tid 0). *)
  let violations =
    List.filter
      (fun e ->
        ph e = Some "i" && str_field "cat" e = Some "violation"
        && str_field "name" e = Some "stale-value-used")
      evs
  in
  Alcotest.(check bool) "violation instant present" true (violations <> []);
  List.iter
    (fun v ->
      Alcotest.(check (option int)) "on the faulting track" (Some 0)
        (int_field "tid" v))
    violations;
  (* Timestamps are the monitor step clock: monotone per track for the
     event-stream phases. (Quantum "X" spans are excluded — they are
     recorded when the quantum {e closes} but stamped with its start.) *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match (ph e, int_field "tid" e, int_field "ts" e) with
      | Some ("i" | "B" | "E"), Some tid, Some ts ->
        let prev = Option.value (Hashtbl.find_opt tbl tid) ~default:(-1) in
        Alcotest.(check bool) "per-track ts monotone" true (ts >= prev);
        Hashtbl.replace tbl tid ts
      | _ -> ())
    evs

let test_figure2_hp_deterministic () =
  let a = Tracer.to_string (figure2_hp_trace ()) in
  let b = Tracer.to_string (figure2_hp_trace ()) in
  Alcotest.(check bool) "two runs, identical bytes" true (a = b)

(* ------------------------------------------------------------------ *)
(* Hook/trace equivalence                                              *)
(* ------------------------------------------------------------------ *)

(* Every monitor event renders as exactly one instant/begin/end trace
   event (counter samples ride alongside), so the tracer's i/B/E count
   must equal the number of hook dispatches — and the monitor's step
   clock, since both subscriptions span the whole execution. *)
let test_hook_vs_trace_counts () =
  let mon = Monitor.create ~mode:`Record ~trace:false () in
  let heap = Era_sim.Heap.create mon in
  let sched = Sched.create ~nthreads:2 (Sched.Random (Era_sim.Rng.create 7)) heap in
  let tr = Tracer.create ~capacity:(1 lsl 18) () in
  let hook_calls = ref 0 in
  Monitor.subscribe mon (fun _ _ -> incr hook_calls);
  let detach = Sim_trace.attach tr mon in
  Sim_trace.attach_sched tr sched;
  let module L = Era_sets.Harris_list.Make (Era_smr.Ebr) in
  let g = Era_smr.Ebr.create heap ~nthreads:2 in
  let dl = L.create (Sched.external_ctx sched ~tid:0) g in
  for tid = 0 to 1 do
    Sched.spawn sched ~tid (fun ctx ->
        let ops = L.ops (L.handle dl ctx) ~record:true in
        Era_workload.Workload.run_set_ops ops
          (Era_sim.Rng.create (tid + 11))
          ~ops:40
          ~keys:(Era_workload.Workload.Uniform 8)
          ~mix:Era_workload.Workload.balanced)
  done;
  ignore (Sched.run sched);
  detach ();
  Alcotest.(check int) "nothing dropped" 0 (Tracer.dropped tr);
  let evs = trace_events (Tracer.to_json tr) in
  let dispatched =
    List.length
      (List.filter
         (fun e -> match ph e with
           | Some ("i" | "B" | "E") -> true
           | _ -> false)
         evs)
  in
  Alcotest.(check int) "hook count = traced event count" !hook_calls
    dispatched;
  Alcotest.(check int) "= monitor step clock" (Monitor.time mon) dispatched;
  (* Quantum spans came from the scheduler hook, not the monitor. *)
  let quanta =
    List.length (List.filter (fun e -> ph e = Some "X") evs)
  in
  Alcotest.(check bool) "quantum spans present" true (quanta > 0)

(* Attaching a tracer must not perturb the schedule: the step clock
   advances identically whether events take the fast path or the
   subscribed path. *)
let test_trace_does_not_perturb () =
  let run tracer =
    let r = Era.Figure2.run ?tracer (scheme "hp") in
    match r.Era.Figure2.outcome with
    | Era.Figure2.Unsafe v -> Fmt.str "%a" Event.pp v
    | Era.Figure2.Safe_completion _ -> "safe"
  in
  let traced = run (Some (Tracer.create ())) in
  let untraced = run None in
  Alcotest.(check string) "same violation either way" untraced traced

(* ------------------------------------------------------------------ *)
(* Native tracing                                                      *)
(* ------------------------------------------------------------------ *)

(* The native harness records one wall-clock work span per domain (after
   the join — the tracer is single-domain) and coordinator-sampled
   "nsmr" counter series. *)
let test_native_trace () =
  let tr = Tracer.create () in
  let r =
    Era_native.Throughput.stack_row ~tracer:tr ~scheme:`Ebr ~domains:2
      ~ops_per_domain:5_000 ()
  in
  Alcotest.(check bool) "ops ran" true (r.Era_native.Throughput.total_ops > 0);
  let evs = trace_events (Tracer.to_json tr) in
  let work_spans =
    List.filter
      (fun e ->
        ph e = Some "X" && str_field "cat" e = Some "native"
        && str_field "name" e = Some "work")
      evs
  in
  Alcotest.(check int) "one work span per domain" 2 (List.length work_spans);
  List.iter
    (fun e ->
      match int_field "dur" e with
      | Some d -> Alcotest.(check bool) "span has duration" true (d >= 0)
      | None -> Alcotest.fail "work span missing dur")
    work_spans;
  let counters =
    List.filter
      (fun e -> ph e = Some "C" && str_field "name" e = Some "nsmr")
      evs
  in
  Alcotest.(check bool) "coordinator sampled counters" true (counters <> [])

(* ------------------------------------------------------------------ *)
(* Explore heartbeat telemetry                                         *)
(* ------------------------------------------------------------------ *)

let test_explore_heartbeat_totals () =
  let progresses = ref [] in
  let config =
    {
      Ex.default_config with
      Ex.max_runs = 300;
      domains = 2;
      progress_every = 50;
      on_progress = Some (fun p -> progresses := p :: !progresses);
    }
  in
  let r = App.explore ~config (scheme "ebr") App.Harris in
  let s = r.Ex.res_stats in
  Alcotest.(check bool) "heartbeats fired" true (!progresses <> []);
  List.iter
    (fun (p : Ex.progress) ->
      Alcotest.(check int) "per-domain runs sum to runs" p.Ex.pg_runs
        (Array.fold_left ( + ) 0 p.Ex.pg_per_domain_runs);
      Alcotest.(check bool) "budget left consistent" true
        (p.Ex.pg_budget_left = 300 - p.Ex.pg_runs))
    !progresses;
  Alcotest.(check int) "stats per-domain runs sum to runs" s.Ex.runs
    (List.fold_left ( + ) 0 s.Ex.per_domain_runs);
  Alcotest.(check int) "one slot per domain" 2
    (List.length s.Ex.per_domain_runs);
  (* The heartbeat sidecar is this registry, serialized: totals must
     match the search stats after a JSON round-trip. *)
  let reg = Ex.stats_registry s in
  let json = parse_json (Registry.to_string reg) in
  let decoded =
    match Registry.metrics_of_json json with
    | Ok m -> m
    | Error e -> Alcotest.failf "sidecar decode: %s" e
  in
  let metric name =
    match
      List.find_opt
        (fun (m : Registry.metric) -> m.Registry.name = name && m.labels = [])
        decoded
    with
    | Some { Registry.value = Registry.Counter n; _ } -> n
    | _ -> Alcotest.failf "missing sidecar metric %s" name
  in
  Alcotest.(check int) "sidecar runs" s.Ex.runs (metric "explore_runs");
  Alcotest.(check int) "sidecar states" s.Ex.states (metric "explore_states");
  let domain_runs =
    List.filter_map
      (fun (m : Registry.metric) ->
        match (m.Registry.name, m.Registry.value) with
        | "explore_domain_runs", Registry.Counter n -> Some n
        | _ -> None)
      decoded
  in
  Alcotest.(check int) "sidecar domain runs sum to runs" s.Ex.runs
    (List.fold_left ( + ) 0 domain_runs)

(* Sequential explore reports too (frontier from the DFS stack). *)
let test_explore_heartbeat_sequential () =
  let progresses = ref [] in
  let config =
    {
      Ex.default_config with
      Ex.max_runs = 120;
      domains = 1;
      progress_every = 40;
      on_progress = Some (fun p -> progresses := p :: !progresses);
    }
  in
  let r = App.explore ~config (scheme "ebr") App.Harris in
  let s = r.Ex.res_stats in
  Alcotest.(check bool) "heartbeats fired" true (!progresses <> []);
  Alcotest.(check (list int)) "single-domain run total" [ s.Ex.runs ]
    s.Ex.per_domain_runs

let () =
  Alcotest.run "era_obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "spans and counters" `Quick test_ring_no_drop;
        ] );
      ( "registry",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_registry_round_trip;
          Alcotest.test_case "dedup and kind safety" `Quick
            test_registry_dedup_and_kinds;
          Alcotest.test_case "log2 buckets" `Quick test_histogram_buckets;
        ] );
      ( "figure2-trace",
        [
          Alcotest.test_case "golden Perfetto JSON" `Quick
            test_figure2_hp_golden;
          Alcotest.test_case "schema and violation instant" `Quick
            test_figure2_hp_schema;
          Alcotest.test_case "deterministic" `Quick
            test_figure2_hp_deterministic;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "hook vs trace counts" `Quick
            test_hook_vs_trace_counts;
          Alcotest.test_case "tracing does not perturb" `Quick
            test_trace_does_not_perturb;
        ] );
      ( "native",
        [ Alcotest.test_case "work spans and counters" `Quick test_native_trace ] );
      ( "telemetry",
        [
          Alcotest.test_case "parallel heartbeat totals" `Quick
            test_explore_heartbeat_totals;
          Alcotest.test_case "sequential heartbeat" `Quick
            test_explore_heartbeat_sequential;
        ] );
    ]

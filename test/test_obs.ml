(* Observability layer (lib/obs): tracer ring semantics, Chrome
   trace-event JSON shape (golden-checked against a committed Perfetto
   trace of the Figure 2 HP run), metrics-registry round-trips, the
   hook-vs-trace event-count invariant, and explore heartbeat totals. *)

module Tracer = Era_obs.Tracer
module Registry = Era_obs.Registry
module Flight = Era_obs.Flight
module Sim_trace = Era_obs.Sim_trace
module Json = Era_metrics.Json
module Monitor = Era_sim.Monitor
module Event = Era_sim.Event
module Sched = Era_sched.Sched
module Ex = Era_explore.Explore
module App = Era.Applicability

let scheme name =
  match Era_smr.Registry.find name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scheme %s" name

let parse_json s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "invalid JSON: %s" e

let trace_events j =
  match Option.bind (Json.member "traceEvents" j) Json.to_list with
  | Some evs -> evs
  | None -> Alcotest.fail "missing traceEvents array"

let ph e = Option.bind (Json.member "ph" e) Json.to_str
let str_field k e = Option.bind (Json.member k e) Json.to_str
let int_field k e = Option.bind (Json.member k e) Json.to_int

(* ------------------------------------------------------------------ *)
(* Tracer ring buffer                                                  *)
(* ------------------------------------------------------------------ *)

let test_ring_overflow () =
  let tr = Tracer.create ~capacity:4 () in
  for i = 1 to 6 do
    Tracer.instant tr ~ts:i ~tid:0 ~cat:"t" (Fmt.str "e%d" i)
  done;
  Alcotest.(check int) "length capped at capacity" 4 (Tracer.length tr);
  Alcotest.(check int) "two oldest dropped" 2 (Tracer.dropped tr);
  let j = Tracer.to_json tr in
  let names =
    List.filter_map
      (fun e -> if ph e = Some "i" then str_field "name" e else None)
      (trace_events j)
  in
  Alcotest.(check (list string))
    "survivors are the newest, in order"
    [ "e3"; "e4"; "e5"; "e6" ] names;
  match Option.bind (Json.member "droppedEvents" j) Json.to_int with
  | Some 2 -> ()
  | other ->
    Alcotest.failf "droppedEvents = %s"
      (match other with Some n -> string_of_int n | None -> "absent")

let test_ring_no_drop () =
  let tr = Tracer.create ~capacity:8 () in
  Tracer.begin_span tr ~ts:1 ~tid:3 ~cat:"op" "insert";
  Tracer.end_span tr ~ts:5 ~tid:3;
  Tracer.counter tr ~ts:2 "nodes" [ ("active", 7); ("retired", 1) ];
  Alcotest.(check int) "length" 3 (Tracer.length tr);
  Alcotest.(check int) "nothing dropped" 0 (Tracer.dropped tr);
  let j = Tracer.to_json tr in
  Alcotest.(check bool)
    "complete traces omit droppedEvents" true
    (Json.member "droppedEvents" j = None);
  (* Export preserves insertion order (chronological for producers). *)
  let phs = List.filter_map ph (trace_events j) in
  Alcotest.(check (list string)) "phases in order" [ "B"; "E"; "C" ] phs

(* The boundary case: a ring filled to exactly its capacity is still a
   complete trace; the very next event starts the overwrite count. *)
let test_ring_wrap_exact () =
  let tr = Tracer.create ~capacity:4 () in
  for i = 1 to 4 do
    Tracer.instant tr ~ts:i ~tid:0 ~cat:"t" (Fmt.str "e%d" i)
  done;
  Alcotest.(check int) "full to the brim" 4 (Tracer.length tr);
  Alcotest.(check int) "exactly full drops nothing" 0 (Tracer.dropped tr);
  Alcotest.(check bool)
    "still a complete trace" true
    (Json.member "droppedEvents" (Tracer.to_json tr) = None);
  Tracer.instant tr ~ts:5 ~tid:0 ~cat:"t" "e5";
  Alcotest.(check int) "length still capped" 4 (Tracer.length tr);
  Alcotest.(check int) "one past capacity = one drop" 1 (Tracer.dropped tr);
  let names =
    List.filter_map
      (fun e -> if ph e = Some "i" then str_field "name" e else None)
      (trace_events (Tracer.to_json tr))
  in
  Alcotest.(check (list string))
    "oldest evicted first" [ "e2"; "e3"; "e4"; "e5" ] names

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_round_trip () =
  let r = Registry.create () in
  let c = Registry.counter r "ops" ~labels:[ ("scheme", "hp") ] in
  Registry.add c 41;
  Registry.incr c;
  Registry.set (Registry.gauge r "occupancy") 0.75;
  let h = Registry.histogram r "backlog" in
  List.iter (Registry.observe h) [ 0; 1; 2; 3; 900 ];
  let snap = Registry.snapshot r in
  let json = parse_json (Registry.to_string r) in
  (match Registry.metrics_of_json json with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok decoded ->
    Alcotest.(check bool) "snapshot round-trips" true (decoded = snap));
  match Registry.find r "ops" ~labels:[ ("scheme", "hp") ] with
  | Some { Registry.value = Registry.Counter 42; _ } -> ()
  | _ -> Alcotest.fail "labelled counter lookup"

let test_registry_dedup_and_kinds () =
  let r = Registry.create () in
  let a = Registry.counter r "n" in
  let b = Registry.counter r "n" in
  Registry.incr a;
  Registry.incr b;
  Alcotest.(check int) "same instrument" 2 (Registry.value a);
  (* Same name under different labels is a distinct instrument... *)
  let c = Registry.counter r "n" ~labels:[ ("d", "1") ] in
  Alcotest.(check int) "distinct under labels" 0 (Registry.value c);
  (* ...but re-registering under a different kind is a bug. *)
  match Registry.gauge r "n" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted"

let test_histogram_buckets () =
  let r = Registry.create () in
  let h = Registry.histogram r "h" in
  (* bucket b covers 2^(b-1) <= v < 2^b; v <= 0 lands in bucket 0 *)
  List.iter (Registry.observe h) [ -5; 0; 1; 2; 3; 4; 7; 8 ];
  match Registry.find r "h" with
  | Some { Registry.value = Registry.Histogram { count; sum; buckets }; _ } ->
    Alcotest.(check int) "count" 8 count;
    Alcotest.(check int) "sum" 20 sum;
    Alcotest.(check (list (pair int int)))
      "log2 buckets"
      [ (0, 2); (1, 1); (2, 2); (3, 2); (4, 1) ]
      buckets
  | _ -> Alcotest.fail "histogram lookup"

(* Labelled histograms survive the JSON round-trip even though the
   export carries derived p50/p90/p99 fields the decoder must ignore. *)
let test_histogram_json_labels () =
  let r = Registry.create () in
  let labels = [ ("scheme", "debra"); ("op", "add") ] in
  let h = Registry.histogram r "native_op_latency_ns" ~labels in
  List.iter (Registry.observe h) [ 120; 250; 300; 4_000; 65_000 ];
  let json = parse_json (Registry.to_string r) in
  (* The export carries the derived quantiles... *)
  let exported =
    match Option.bind (Json.member "metrics" json) Json.to_list with
    | Some [ m ] -> m
    | _ -> Alcotest.fail "expected exactly one exported metric"
  in
  List.iter
    (fun q ->
      Alcotest.(check bool) (q ^ " exported") true
        (Json.member q exported <> None))
    [ "p50"; "p90"; "p99" ];
  (* ...and the decode ignores them, reconstructing the exact metric. *)
  match Registry.metrics_of_json json with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok [ m ] ->
    Alcotest.(check string) "name" "native_op_latency_ns" m.Registry.name;
    Alcotest.(check (list (pair string string))) "labels" labels m.labels;
    (match m.Registry.value with
    | Registry.Histogram { count; sum; buckets } ->
      Alcotest.(check int) "count" 5 count;
      Alcotest.(check int) "sum" 69_670 sum;
      Alcotest.(check (list (pair int int)))
        "buckets"
        [ (7, 1); (8, 1); (9, 1); (12, 1); (16, 1) ]
        buckets
    | _ -> Alcotest.fail "expected a histogram")
  | Ok ms -> Alcotest.failf "expected one metric, decoded %d" (List.length ms)

(* The quantile estimator interpolates linearly inside a log2 bucket
   [2^(b-1), 2^b), so hand-built buckets have closed-form answers. *)
let test_estimate_quantile () =
  let est = Registry.estimate_quantile in
  let hist count buckets = Registry.Histogram { count; sum = 0; buckets } in
  let check name want got =
    match got with
    | Some v -> Alcotest.(check (float 1e-9)) name want v
    | None -> Alcotest.failf "%s: no estimate" name
  in
  (* All mass in bucket 3 = [4, 8): quantiles sweep the bucket. *)
  let one = hist 4 [ (3, 4) ] in
  check "p0 at bucket floor" 4.0 (est one 0.0);
  check "p50 mid-bucket" 6.0 (est one 0.5);
  check "p100 at bucket ceiling" 8.0 (est one 1.0);
  (* Mass split across buckets: rank walks the cumulative counts. *)
  let split = hist 4 [ (1, 1); (2, 1); (4, 2) ] in
  check "p50 lands at bucket 2's ceiling" 4.0 (est split 0.5);
  check "p99 interpolates inside bucket 4" 15.84 (est split 0.99);
  (* Out-of-range q clamps rather than failing. *)
  check "q > 1 clamps" 16.0 (est split 1.5);
  (* Non-histograms and empty histograms estimate nothing. *)
  Alcotest.(check bool) "counter" true (est (Registry.Counter 9) 0.5 = None);
  Alcotest.(check bool) "empty" true (est (hist 0 []) 0.5 = None)

(* ------------------------------------------------------------------ *)
(* Figure 2 HP: golden Perfetto trace                                  *)
(* ------------------------------------------------------------------ *)

let figure2_hp_trace () =
  let tr = Tracer.create () in
  let r = Era.Figure2.run ~tracer:tr (scheme "hp") in
  (match r.Era.Figure2.outcome with
  | Era.Figure2.Unsafe _ -> ()
  | _ -> Alcotest.fail "figure2 hp should be unsafe");
  tr

let test_figure2_hp_golden () =
  let got = Tracer.to_string (figure2_hp_trace ()) in
  let ic = open_in_bin "golden/figure2_hp_trace.json" in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if got <> want then
    Alcotest.failf
      "trace differs from golden (got %d bytes, want %d) — if the change \
       is intentional, regenerate with:\n\
      \  dune exec bin/era_cli.exe -- trace figure2 --scheme hp \
       --out test/golden/figure2_hp_trace.json"
      (String.length got) (String.length want)

let test_figure2_hp_schema () =
  let tr = figure2_hp_trace () in
  Alcotest.(check int) "nothing dropped" 0 (Tracer.dropped tr);
  let j = Tracer.to_json tr in
  let evs = trace_events j in
  (* Metadata names the process and every track, and comes first. *)
  (match evs with
  | m :: _ when ph m = Some "M" -> ()
  | _ -> Alcotest.fail "metadata events must lead");
  let thread_names =
    List.filter_map
      (fun e ->
        if ph e = Some "M" && str_field "name" e = Some "thread_name" then
          Option.bind (Json.member "args" e) (str_field "name")
        else None)
      evs
  in
  Alcotest.(check bool)
    "stalling inserter track is named" true
    (List.mem "T1 insert(58) [stalls]" thread_names);
  (* The paper's violation: a stale value used by the stalled inserter —
     an instant on the faulting thread's track (tid 0). *)
  let violations =
    List.filter
      (fun e ->
        ph e = Some "i" && str_field "cat" e = Some "violation"
        && str_field "name" e = Some "stale-value-used")
      evs
  in
  Alcotest.(check bool) "violation instant present" true (violations <> []);
  List.iter
    (fun v ->
      Alcotest.(check (option int)) "on the faulting track" (Some 0)
        (int_field "tid" v))
    violations;
  (* Timestamps are the monitor step clock: monotone per track for the
     event-stream phases. (Quantum "X" spans are excluded — they are
     recorded when the quantum {e closes} but stamped with its start.) *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match (ph e, int_field "tid" e, int_field "ts" e) with
      | Some ("i" | "B" | "E"), Some tid, Some ts ->
        let prev = Option.value (Hashtbl.find_opt tbl tid) ~default:(-1) in
        Alcotest.(check bool) "per-track ts monotone" true (ts >= prev);
        Hashtbl.replace tbl tid ts
      | _ -> ())
    evs

let test_figure2_hp_deterministic () =
  let a = Tracer.to_string (figure2_hp_trace ()) in
  let b = Tracer.to_string (figure2_hp_trace ()) in
  Alcotest.(check bool) "two runs, identical bytes" true (a = b)

(* ------------------------------------------------------------------ *)
(* Hook/trace equivalence                                              *)
(* ------------------------------------------------------------------ *)

(* Every monitor event renders as exactly one instant/begin/end trace
   event (counter samples ride alongside), so the tracer's i/B/E count
   must equal the number of hook dispatches — and the monitor's step
   clock, since both subscriptions span the whole execution. *)
let test_hook_vs_trace_counts () =
  let mon = Monitor.create ~mode:`Record ~trace:false () in
  let heap = Era_sim.Heap.create mon in
  let sched = Sched.create ~nthreads:2 (Sched.Random (Era_sim.Rng.create 7)) heap in
  let tr = Tracer.create ~capacity:(1 lsl 18) () in
  let hook_calls = ref 0 in
  Monitor.subscribe mon (fun _ _ -> incr hook_calls);
  let detach = Sim_trace.attach tr mon in
  Sim_trace.attach_sched tr sched;
  let module L = Era_sets.Harris_list.Make (Era_smr.Ebr) in
  let g = Era_smr.Ebr.create heap ~nthreads:2 in
  let dl = L.create (Sched.external_ctx sched ~tid:0) g in
  for tid = 0 to 1 do
    Sched.spawn sched ~tid (fun ctx ->
        let ops = L.ops (L.handle dl ctx) ~record:true in
        Era_workload.Workload.run_set_ops ops
          (Era_sim.Rng.create (tid + 11))
          ~ops:40
          ~keys:(Era_workload.Workload.Uniform 8)
          ~mix:Era_workload.Workload.balanced)
  done;
  ignore (Sched.run sched);
  detach ();
  Alcotest.(check int) "nothing dropped" 0 (Tracer.dropped tr);
  let evs = trace_events (Tracer.to_json tr) in
  let dispatched =
    List.length
      (List.filter
         (fun e -> match ph e with
           | Some ("i" | "B" | "E") -> true
           | _ -> false)
         evs)
  in
  Alcotest.(check int) "hook count = traced event count" !hook_calls
    dispatched;
  Alcotest.(check int) "= monitor step clock" (Monitor.time mon) dispatched;
  (* Quantum spans came from the scheduler hook, not the monitor. *)
  let quanta =
    List.length (List.filter (fun e -> ph e = Some "X") evs)
  in
  Alcotest.(check bool) "quantum spans present" true (quanta > 0)

(* Attaching a tracer must not perturb the schedule: the step clock
   advances identically whether events take the fast path or the
   subscribed path. *)
let test_trace_does_not_perturb () =
  let run tracer =
    let r = Era.Figure2.run ?tracer (scheme "hp") in
    match r.Era.Figure2.outcome with
    | Era.Figure2.Unsafe v -> Fmt.str "%a" Event.pp v
    | Era.Figure2.Safe_completion _ -> "safe"
  in
  let traced = run (Some (Tracer.create ())) in
  let untraced = run None in
  Alcotest.(check string) "same violation either way" untraced traced

(* ------------------------------------------------------------------ *)
(* Native tracing                                                      *)
(* ------------------------------------------------------------------ *)

(* The native harness records one wall-clock work span per domain (after
   the join — the tracer is single-domain) and coordinator-sampled
   "nsmr" counter series. *)
let test_native_trace () =
  let tr = Tracer.create () in
  let r =
    Era_native.Throughput.stack_row ~tracer:tr ~scheme:`Ebr ~domains:2
      ~ops_per_domain:5_000 ()
  in
  Alcotest.(check bool) "ops ran" true (r.Era_native.Throughput.total_ops > 0);
  let evs = trace_events (Tracer.to_json tr) in
  let work_spans =
    List.filter
      (fun e ->
        ph e = Some "X" && str_field "cat" e = Some "native"
        && str_field "name" e = Some "work")
      evs
  in
  Alcotest.(check int) "one work span per domain" 2 (List.length work_spans);
  List.iter
    (fun e ->
      match int_field "dur" e with
      | Some d -> Alcotest.(check bool) "span has duration" true (d >= 0)
      | None -> Alcotest.fail "work span missing dur")
    work_spans;
  let counters =
    List.filter
      (fun e -> ph e = Some "C" && str_field "name" e = Some "nsmr")
      evs
  in
  Alcotest.(check bool) "coordinator sampled counters" true (counters <> [])

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(* The detached recorder is the zero-cost configuration: every handle
   is the null handle, recording is a no-op, and the merge is empty. *)
let test_flight_detached () =
  let t = Flight.null in
  Alcotest.(check bool) "inactive" false (Flight.active t);
  let h = Flight.handle t 0 in
  Alcotest.(check bool) "null handle" false (Flight.recording h);
  Alcotest.(check bool)
    "coordinator is null too" false
    (Flight.recording (Flight.coordinator t));
  Flight.retire h;
  Flight.backlog h ~domain:0 42;
  Flight.observe_op h Flight.op_add 1_000;
  Alcotest.(check int) "nothing buffered" 0 (Flight.total_events t);
  Alcotest.(check int) "nothing dropped" 0 (Flight.dropped t);
  Alcotest.(check int) "empty merge" 0 (Tracer.length (Flight.to_tracer t));
  let r = Registry.create () in
  Flight.to_registry t r;
  Alcotest.(check bool) "no metrics published" true (Registry.snapshot r = [])

(* Per-ring wrap accounting mirrors the tracer's: exactly full is
   complete, the next record starts the drop count, and out-of-range
   handles degrade to the null handle instead of failing. *)
let test_flight_ring_wrap () =
  let t = Flight.create ~capacity:4 ~ndomains:1 () in
  let h = Flight.handle t 0 in
  Alcotest.(check bool) "live handle" true (Flight.recording h);
  for _ = 1 to 4 do
    Flight.retire h
  done;
  Alcotest.(check int) "exactly full" 4 (Flight.total_events t);
  Alcotest.(check int) "exactly full drops nothing" 0 (Flight.dropped t);
  Flight.retire h;
  Flight.retire h;
  Alcotest.(check int) "still holds capacity" 4 (Flight.total_events t);
  Alcotest.(check int) "two overwritten" 2 (Flight.dropped t);
  Alcotest.(check bool)
    "out-of-range domain gets the null handle" false
    (Flight.recording (Flight.handle t 99))

(* Hand-drive a two-domain recorder and check the merged Perfetto
   shape: lifecycle instants and restart/stall spans land on per-domain
   tracks, gauge samples become named counter tracks, and the latency
   histograms publish with an op label. *)
let test_flight_merge_shape () =
  let t = Flight.create ~capacity:64 ~ndomains:2 () in
  let h0 = Flight.handle t 0 and h1 = Flight.handle t 1 in
  Flight.retire h0;
  Flight.restart_begin h0;
  Flight.restart_end h0;
  Flight.stall_begin h1;
  Flight.stall_end h1;
  let c = Flight.coordinator t in
  Flight.backlog c ~domain:0 5;
  Flight.epoch_lag c ~domain:1 2;
  Flight.observe_op h0 Flight.op_add 300;
  Alcotest.(check int) "all events buffered" 7 (Flight.total_events t);
  let evs = trace_events (Tracer.to_json (Flight.to_tracer t)) in
  let find want_ph want_name =
    List.filter
      (fun e -> ph e = Some want_ph && str_field "name" e = Some want_name)
      evs
  in
  (match find "i" "retire" with
  | [ e ] ->
    Alcotest.(check (option int)) "retire on D0's track" (Some 0)
      (int_field "tid" e)
  | l -> Alcotest.failf "expected one retire instant, got %d" (List.length l));
  (match find "B" "neutralize-restart" with
  | [ e ] ->
    Alcotest.(check (option int)) "restart span on D0's track" (Some 0)
      (int_field "tid" e)
  | l -> Alcotest.failf "expected one restart begin, got %d" (List.length l));
  (match find "B" "stall" with
  | [ e ] ->
    Alcotest.(check (option int)) "stall span on D1's track" (Some 1)
      (int_field "tid" e)
  | l -> Alcotest.failf "expected one stall begin, got %d" (List.length l));
  Alcotest.(check int) "both spans closed" 2
    (List.length (List.filter (fun e -> ph e = Some "E") evs));
  Alcotest.(check int) "backlog counter track" 1
    (List.length (find "C" "backlog/d0"));
  Alcotest.(check int) "epoch-lag counter track" 1
    (List.length (find "C" "epoch-lag/d1"));
  let r = Registry.create () in
  Flight.to_registry t r;
  match Registry.find r "native_op_latency_ns" ~labels:[ ("op", "add") ] with
  | Some
      { Registry.value = Registry.Histogram { count = 1; sum = 300; buckets };
        _ } ->
    Alcotest.(check (list (pair int int)))
      "300 ns lands in bucket 9" [ (9, 1) ] buckets
  | _ -> Alcotest.fail "latency histogram not published"

(* ------------------------------------------------------------------ *)
(* Explore heartbeat telemetry                                         *)
(* ------------------------------------------------------------------ *)

let test_explore_heartbeat_totals () =
  let progresses = ref [] in
  let config =
    {
      Ex.default_config with
      Ex.max_runs = 300;
      domains = 2;
      progress_every = 50;
      on_progress = Some (fun p -> progresses := p :: !progresses);
    }
  in
  let r = App.explore ~config (scheme "ebr") App.Harris in
  let s = r.Ex.res_stats in
  Alcotest.(check bool) "heartbeats fired" true (!progresses <> []);
  List.iter
    (fun (p : Ex.progress) ->
      Alcotest.(check int) "per-domain runs sum to runs" p.Ex.pg_runs
        (Array.fold_left ( + ) 0 p.Ex.pg_per_domain_runs);
      Alcotest.(check bool) "budget left consistent" true
        (p.Ex.pg_budget_left = 300 - p.Ex.pg_runs))
    !progresses;
  Alcotest.(check int) "stats per-domain runs sum to runs" s.Ex.runs
    (List.fold_left ( + ) 0 s.Ex.per_domain_runs);
  Alcotest.(check int) "one slot per domain" 2
    (List.length s.Ex.per_domain_runs);
  (* The heartbeat sidecar is this registry, serialized: totals must
     match the search stats after a JSON round-trip. *)
  let reg = Ex.stats_registry s in
  let json = parse_json (Registry.to_string reg) in
  let decoded =
    match Registry.metrics_of_json json with
    | Ok m -> m
    | Error e -> Alcotest.failf "sidecar decode: %s" e
  in
  let metric name =
    match
      List.find_opt
        (fun (m : Registry.metric) -> m.Registry.name = name && m.labels = [])
        decoded
    with
    | Some { Registry.value = Registry.Counter n; _ } -> n
    | _ -> Alcotest.failf "missing sidecar metric %s" name
  in
  Alcotest.(check int) "sidecar runs" s.Ex.runs (metric "explore_runs");
  Alcotest.(check int) "sidecar states" s.Ex.states (metric "explore_states");
  let domain_runs =
    List.filter_map
      (fun (m : Registry.metric) ->
        match (m.Registry.name, m.Registry.value) with
        | "explore_domain_runs", Registry.Counter n -> Some n
        | _ -> None)
      decoded
  in
  Alcotest.(check int) "sidecar domain runs sum to runs" s.Ex.runs
    (List.fold_left ( + ) 0 domain_runs)

(* Sequential explore reports too (frontier from the DFS stack). *)
let test_explore_heartbeat_sequential () =
  let progresses = ref [] in
  let config =
    {
      Ex.default_config with
      Ex.max_runs = 120;
      domains = 1;
      progress_every = 40;
      on_progress = Some (fun p -> progresses := p :: !progresses);
    }
  in
  let r = App.explore ~config (scheme "ebr") App.Harris in
  let s = r.Ex.res_stats in
  Alcotest.(check bool) "heartbeats fired" true (!progresses <> []);
  Alcotest.(check (list int)) "single-domain run total" [ s.Ex.runs ]
    s.Ex.per_domain_runs

let () =
  Alcotest.run "era_obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "spans and counters" `Quick test_ring_no_drop;
          Alcotest.test_case "wrap at exact capacity" `Quick
            test_ring_wrap_exact;
        ] );
      ( "registry",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_registry_round_trip;
          Alcotest.test_case "dedup and kind safety" `Quick
            test_registry_dedup_and_kinds;
          Alcotest.test_case "log2 buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "labelled histogram JSON" `Quick
            test_histogram_json_labels;
          Alcotest.test_case "quantile estimator" `Quick test_estimate_quantile;
        ] );
      ( "flight",
        [
          Alcotest.test_case "detached is a no-op" `Quick test_flight_detached;
          Alcotest.test_case "ring wrap accounting" `Quick
            test_flight_ring_wrap;
          Alcotest.test_case "Perfetto merge shape" `Quick
            test_flight_merge_shape;
        ] );
      ( "figure2-trace",
        [
          Alcotest.test_case "golden Perfetto JSON" `Quick
            test_figure2_hp_golden;
          Alcotest.test_case "schema and violation instant" `Quick
            test_figure2_hp_schema;
          Alcotest.test_case "deterministic" `Quick
            test_figure2_hp_deterministic;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "hook vs trace counts" `Quick
            test_hook_vs_trace_counts;
          Alcotest.test_case "tracing does not perturb" `Quick
            test_trace_does_not_perturb;
        ] );
      ( "native",
        [ Alcotest.test_case "work spans and counters" `Quick test_native_trace ] );
      ( "telemetry",
        [
          Alcotest.test_case "parallel heartbeat totals" `Quick
            test_explore_heartbeat_totals;
          Alcotest.test_case "sequential heartbeat" `Quick
            test_explore_heartbeat_sequential;
        ] );
    ]

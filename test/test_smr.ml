(* Per-scheme behaviour tests: integration audits (Definition 5.3),
   epoch/era/interval mechanics, protection, roll-backs and
   neutralization. *)

open Era_sim
module Sched = Era_sched.Sched
module Mem = Era_sched.Mem
module Integration = Era_smr.Integration
module Registry = Era_smr.Registry

let setup ?(nthreads = 2) () =
  let mon = Monitor.create ~mode:`Record ~trace:true () in
  let heap = Heap.create mon in
  let sched = Sched.create ~nthreads Sched.Round_robin heap in
  (heap, mon, sched)

(* ------------------------------------------------------------------ *)
(* Integration audit (Definition 5.3)                                  *)
(* ------------------------------------------------------------------ *)

(* Definition 5.3 verdicts: registry-driven (a scheme added without an
   expectation fails loudly) and one test case per scheme with no state
   shared between cases, so the order can be shuffled (ERA_TEST_SHUFFLE
   below). *)
let audit_expect = [
  ("none", true); ("ebr", true); ("hp", true); ("ibr", true); ("he", true);
  ("rc", true); ("vbr", false); ("nbr", false); ("debra", true);
]

let audit_cases =
  List.map
    (fun s ->
      let name = Registry.name_of s in
      Alcotest.test_case (name ^ " audit verdict") `Quick (fun () ->
          match List.assoc_opt name audit_expect with
          | None -> Alcotest.failf "no audit expectation for scheme %s" name
          | Some easy ->
            Alcotest.(check bool) name easy (Registry.easily_integrated s)))
    Registry.all

(* tiny substring helper to avoid a dependency *)
module Astring_like = struct
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
end

let test_audit_conditions () =
  let base (module S : Era_smr.Smr_intf.S) = S.integration in
  let vbr = base (Registry.find_exn "vbr") in
  let _, vbr_fails = Integration.easily_integrated vbr in
  Alcotest.(check bool) "vbr rollback condition" true
    (List.exists (fun m -> Astring_like.contains m "condition 4") vbr_fails);
  let nbr = base (Registry.find_exn "nbr") in
  let _, nbr_fails = Integration.easily_integrated nbr in
  Alcotest.(check bool) "nbr phase condition" true
    (List.exists (fun m -> Astring_like.contains m "phase-annotations") nbr_fails);
  let synthetic =
    { vbr with Integration.modifies_ds_fields = true }
  in
  let _, fails = Integration.easily_integrated synthetic in
  Alcotest.(check bool) "condition 5 detected" true
    (List.exists (fun m -> Astring_like.contains m "condition 5") fails)

(* ------------------------------------------------------------------ *)
(* EBR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ebr_epoch_advances () =
  let heap, _, sched = setup () in
  let g = Era_smr.Ebr.create heap ~nthreads:2 in
  let ext0 = Sched.external_ctx sched ~tid:0 in
  let t0 = Era_smr.Ebr.thread g ext0 in
  let e0 = Era_smr.Ebr.current_epoch g in
  Era_smr.Ebr.begin_op t0;
  Era_smr.Ebr.end_op t0;
  Era_smr.Ebr.begin_op t0;
  Era_smr.Ebr.end_op t0;
  Alcotest.(check bool) "epoch advanced" true
    (Era_smr.Ebr.current_epoch g > e0)

let test_ebr_reclaims_after_two_epochs () =
  let heap, mon, sched = setup () in
  let g = Era_smr.Ebr.create heap ~nthreads:1 in
  let t = Era_smr.Ebr.thread g (Sched.external_ctx sched ~tid:0) in
  Era_smr.Ebr.begin_op t;
  let w = Era_smr.Ebr.alloc t ~key:1 in
  Era_smr.Ebr.retire t w;
  Era_smr.Ebr.end_op t;
  Alcotest.(check int) "not yet reclaimed" 1 (Monitor.retired mon);
  for _ = 1 to 4 do
    Era_smr.Ebr.begin_op t;
    Era_smr.Ebr.end_op t
  done;
  Era_smr.Ebr.quiesce t;
  Alcotest.(check int) "reclaimed after epochs advanced" 0
    (Monitor.retired mon)

let test_ebr_stalled_thread_blocks () =
  let heap, mon, sched = setup () in
  let g = Era_smr.Ebr.create heap ~nthreads:2 in
  let t0 = Era_smr.Ebr.thread g (Sched.external_ctx sched ~tid:0) in
  let t1 = Era_smr.Ebr.thread g (Sched.external_ctx sched ~tid:1) in
  (* T1 announces an epoch and never finishes. *)
  Era_smr.Ebr.begin_op t1;
  let e_pinned = Era_smr.Ebr.announced g 1 in
  for i = 0 to 19 do
    Era_smr.Ebr.begin_op t0;
    let w = Era_smr.Ebr.alloc t0 ~key:i in
    Era_smr.Ebr.retire t0 w;
    Era_smr.Ebr.end_op t0
  done;
  Era_smr.Ebr.quiesce t0;
  Alcotest.(check bool) "epoch pinned near announcement" true
    (Era_smr.Ebr.current_epoch g <= e_pinned + 1);
  Alcotest.(check bool) "backlog grows" true (Monitor.retired mon >= 18)

(* ------------------------------------------------------------------ *)
(* HP                                                                  *)
(* ------------------------------------------------------------------ *)

let test_hp_protection_pins_node () =
  let heap, mon, sched = setup () in
  let g = Era_smr.Hp.create heap ~nthreads:2 in
  let t0 = Era_smr.Hp.thread g (Sched.external_ctx sched ~tid:0) in
  let t1 = Era_smr.Hp.thread g (Sched.external_ctx sched ~tid:1) in
  (* Build root -> a, protect a via t1's read, then t0 retires a and
     floods its retire list to force scans. *)
  let root = Mem.alloc_sentinel (Sched.external_ctx sched ~tid:0) ~key:0 in
  Era_smr.Hp.begin_op t0;
  let a = Era_smr.Hp.alloc t0 ~key:1 in
  Era_smr.Hp.write t0 ~via:root ~field:0 a;
  Era_smr.Hp.begin_op t1;
  let a_seen = Era_smr.Hp.read t1 ~via:root ~field:0 in
  Alcotest.(check bool) "read returned the node" true (Word.equal a a_seen);
  Alcotest.(check bool) "address protected" true
    (List.mem (Word.addr_exn a) (Era_smr.Hp.protected_addrs g));
  (* unlink and retire a, then churn enough retirements to scan *)
  Era_smr.Hp.write t0 ~via:root ~field:0 Word.Null;
  Era_smr.Hp.retire t0 a;
  for i = 0 to (2 * Era_smr.Hp.scan_threshold) - 1 do
    let w = Era_smr.Hp.alloc t0 ~key:(100 + i) in
    Era_smr.Hp.retire t0 w
  done;
  Alcotest.(check bool) "a still valid (protected)" true (Heap.is_valid heap a);
  Alcotest.(check bool) "unprotected ones reclaimed" true
    (Monitor.retired mon < Era_smr.Hp.scan_threshold + 2);
  (* Drop protection; next scan frees it. *)
  Era_smr.Hp.end_op t1;
  Era_smr.Hp.quiesce t0;
  Alcotest.(check bool) "a reclaimed after unprotect" false
    (Heap.is_valid heap a);
  Era_smr.Hp.end_op t0

let test_hp_backlog_bounded () =
  let heap, mon, sched = setup () in
  let g = Era_smr.Hp.create heap ~nthreads:1 in
  let t = Era_smr.Hp.thread g (Sched.external_ctx sched ~tid:0) in
  Era_smr.Hp.begin_op t;
  for i = 0 to 499 do
    let w = Era_smr.Hp.alloc t ~key:i in
    Era_smr.Hp.retire t w
  done;
  Alcotest.(check bool) "bounded backlog" true
    (Monitor.retired mon <= Era_smr.Hp.scan_threshold)

(* ------------------------------------------------------------------ *)
(* IBR / HE                                                            *)
(* ------------------------------------------------------------------ *)

let test_ibr_reservation_pins_interval () =
  let heap, _, sched = setup () in
  let g = Era_smr.Ibr.create heap ~nthreads:2 in
  let t0 = Era_smr.Ibr.thread g (Sched.external_ctx sched ~tid:0) in
  let t1 = Era_smr.Ibr.thread g (Sched.external_ctx sched ~tid:1) in
  Era_smr.Ibr.begin_op t0;
  let old = Era_smr.Ibr.alloc t0 ~key:1 in
  (* t1 reserves the current interval (covers [old]'s birth). *)
  Era_smr.Ibr.begin_op t1;
  ignore (Era_smr.Ibr.reservation g 1);
  Era_smr.Ibr.retire t0 old;
  (* churn young nodes to trigger scans *)
  for i = 0 to (2 * Era_smr.Ibr.scan_threshold) - 1 do
    let w = Era_smr.Ibr.alloc t0 ~key:(100 + i) in
    Era_smr.Ibr.retire t0 w
  done;
  Alcotest.(check bool) "old node pinned by reservation" true
    (Heap.is_valid heap old);
  Era_smr.Ibr.end_op t1;
  Era_smr.Ibr.quiesce t0;
  Alcotest.(check bool) "freed once reservation lifted" false
    (Heap.is_valid heap old);
  Era_smr.Ibr.end_op t0

let test_he_era_pins_covered_nodes () =
  let heap, _, sched = setup () in
  let g = Era_smr.He.create heap ~nthreads:2 in
  let t0 = Era_smr.He.thread g (Sched.external_ctx sched ~tid:0) in
  let t1 = Era_smr.He.thread g (Sched.external_ctx sched ~tid:1) in
  let root = Mem.alloc_sentinel (Sched.external_ctx sched ~tid:0) ~key:0 in
  Era_smr.He.begin_op t0;
  let old = Era_smr.He.alloc t0 ~key:1 in
  Era_smr.He.write t0 ~via:root ~field:0 old;
  (* t1 publishes the current era by reading. *)
  Era_smr.He.begin_op t1;
  ignore (Era_smr.He.read t1 ~via:root ~field:0);
  Alcotest.(check bool) "era published" true
    (Era_smr.He.published_eras g <> []);
  Era_smr.He.write t0 ~via:root ~field:0 Word.Null;
  Era_smr.He.retire t0 old;
  (* young churn: born after t1's published era, so reclaimable *)
  for i = 0 to (2 * Era_smr.He.scan_threshold) - 1 do
    let w = Era_smr.He.alloc t0 ~key:(100 + i) in
    Era_smr.He.retire t0 w
  done;
  Alcotest.(check bool) "covered node pinned" true (Heap.is_valid heap old);
  Era_smr.He.end_op t1;
  Era_smr.He.quiesce t0;
  Alcotest.(check bool) "freed once era dropped" false (Heap.is_valid heap old)

(* ------------------------------------------------------------------ *)
(* VBR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vbr_rollback_on_stale_read () =
  let heap, mon, sched = setup () in
  let g = Era_smr.Vbr.create heap ~nthreads:1 in
  let t = Era_smr.Vbr.thread g (Sched.external_ctx sched ~tid:0) in
  let victim = ref Word.Null in
  let first = ref true in
  let r =
    Era_smr.Vbr.with_op t (fun () ->
        if !first then begin
          first := false;
          (* Allocate, retire, and force-recycle a node, then read it. *)
          let w = Era_smr.Vbr.alloc t ~key:1 in
          victim := w;
          for _ = 0 to Era_smr.Vbr.retire_cap + 1 do
            let v = Era_smr.Vbr.alloc t ~key:9 in
            Era_smr.Vbr.retire t v
          done;
          Era_smr.Vbr.retire t w;
          for _ = 0 to Era_smr.Vbr.retire_cap + 1 do
            let v = Era_smr.Vbr.alloc t ~key:9 in
            Era_smr.Vbr.retire t v
          done;
          (* w is now reclaimed: this read must roll back. *)
          ignore (Era_smr.Vbr.read t ~via:!victim ~field:0);
          `Unreachable
        end
        else `Recovered)
  in
  Alcotest.(check bool) "rolled back and recovered" true (r = `Recovered);
  Alcotest.(check bool) "rollback counted" true (Era_smr.Vbr.rollbacks g >= 1);
  Alcotest.(check int) "no safety violation" 0 (Monitor.violation_count mon)

let test_vbr_constant_backlog () =
  let heap, mon, sched = setup () in
  let g = Era_smr.Vbr.create heap ~nthreads:1 in
  let t = Era_smr.Vbr.thread g (Sched.external_ctx sched ~tid:0) in
  Era_smr.Vbr.with_op t (fun () ->
      for i = 0 to 999 do
        let w = Era_smr.Vbr.alloc t ~key:i in
        Era_smr.Vbr.retire t w
      done);
  Alcotest.(check bool) "backlog below cap" true
    (Monitor.retired mon < Era_smr.Vbr.retire_cap);
  Alcotest.(check bool) "reuse happened" true
    ((Heap.stats heap).Heap.reclaims > 900)

(* ------------------------------------------------------------------ *)
(* NBR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_nbr_neutralization_restarts_reader () =
  let heap, mon, _ = setup () in
  let sched =
    Sched.create ~nthreads:2
      (Sched.Script [ Sched.Run (0, 6); Sched.Finish 1; Sched.Finish 0 ])
      heap
  in
  ignore mon;
  let g = Era_smr.Nbr.create heap ~nthreads:2 in
  let root = Mem.alloc_sentinel (Sched.external_ctx sched ~tid:1) ~key:0 in
  let restarted_with_fresh_view = ref false in
  Sched.spawn sched ~tid:0 (fun ctx ->
      let t = Era_smr.Nbr.thread g ctx in
      Era_smr.Nbr.with_op t (fun () ->
          Era_smr.Nbr.read_phase t (fun () ->
              (* Loop reading; once neutralized the bracket restarts. *)
              for _ = 1 to 20 do
                ignore (Era_smr.Nbr.read t ~via:root ~field:0)
              done;
              restarted_with_fresh_view := Era_smr.Nbr.restarts g > 0)));
  Sched.spawn sched ~tid:1 (fun ctx ->
      let t = Era_smr.Nbr.thread g ctx in
      Era_smr.Nbr.with_op t (fun () ->
          (* Retire enough to trigger a reclamation pass, which signals. *)
          for i = 0 to Era_smr.Nbr.retire_cap + 2 do
            let w = Era_smr.Nbr.alloc t ~key:i in
            Era_smr.Nbr.retire t w
          done));
  ignore (Sched.run sched);
  Alcotest.(check bool) "neutralization delivered" true
    (Era_smr.Nbr.neutralizations g > 0);
  Alcotest.(check bool) "reader restarted" true (Era_smr.Nbr.restarts g > 0);
  Alcotest.(check bool) "reader observed its restart" true
    !restarted_with_fresh_view

let test_nbr_backlog_bounded_with_stalled_reader () =
  (* Unlike EBR, a stalled reader does not stop NBR reclamation. *)
  let heap, mon, sched = setup () in
  let g = Era_smr.Nbr.create heap ~nthreads:2 in
  let t1 = Era_smr.Nbr.thread g (Sched.external_ctx sched ~tid:1) in
  (* Thread 0 is "stalled mid read phase": it simply never runs again. *)
  for i = 0 to 99 do
    let w = Era_smr.Nbr.alloc t1 ~key:i in
    Era_smr.Nbr.retire t1 w
  done;
  Alcotest.(check bool) "bounded backlog" true
    (Monitor.retired mon <= Era_smr.Nbr.retire_cap)

(* ------------------------------------------------------------------ *)
(* DEBRA+                                                              *)
(* ------------------------------------------------------------------ *)

let test_debra_epoch_advances_and_reclaims () =
  let heap, mon, sched = setup ~nthreads:1 () in
  ignore heap;
  let g = Era_smr.Debra.create heap ~nthreads:1 in
  let t = Era_smr.Debra.thread g (Sched.external_ctx sched ~tid:0) in
  let e0 = Era_smr.Debra.current_epoch g in
  for i = 0 to 9 do
    Era_smr.Debra.with_op t (fun () ->
        let w = Era_smr.Debra.alloc t ~key:i in
        Era_smr.Debra.retire t w)
  done;
  Alcotest.(check bool) "epoch advanced" true
    (Era_smr.Debra.current_epoch g > e0);
  Era_smr.Debra.quiesce t;
  Era_smr.Debra.quiesce t;
  Alcotest.(check int) "all bags freed at quiescence" 0 (Monitor.retired mon)

let test_debra_neutralization_restarts_reader () =
  let heap, mon, _ = setup () in
  let sched =
    Sched.create ~nthreads:2
      (Sched.Script [ Sched.Run (0, 6); Sched.Finish 1; Sched.Finish 0 ])
      heap
  in
  let g = Era_smr.Debra.create heap ~nthreads:2 in
  let root = Mem.alloc_sentinel (Sched.external_ctx sched ~tid:1) ~key:0 in
  Sched.spawn sched ~tid:0 (fun ctx ->
      let t = Era_smr.Debra.thread g ctx in
      Era_smr.Debra.with_op t (fun () ->
          (* A long read loop: stalled after 6 quanta, holding its
             announced epoch, until T1 neutralizes it. *)
          for _ = 1 to 20 do
            ignore (Era_smr.Debra.read t ~via:root ~field:0)
          done));
  Sched.spawn sched ~tid:1 (fun ctx ->
      let t = Era_smr.Debra.thread g ctx in
      (* Each op attempts an advance; past [patience] blocked attempts
         the stalled reader is neutralized and the epoch moves on. *)
      for i = 1 to Era_smr.Debra.patience + 3 do
        Era_smr.Debra.with_op t (fun () ->
            let w = Era_smr.Debra.alloc t ~key:i in
            Era_smr.Debra.retire t w)
      done);
  ignore (Sched.run sched);
  Alcotest.(check bool) "neutralization delivered" true
    (Era_smr.Debra.neutralizations g > 0);
  Alcotest.(check bool) "reader restarted" true (Era_smr.Debra.restarts g > 0);
  Alcotest.(check int) "no safety violation" 0 (Monitor.violation_count mon)

let test_debra_stalled_thread_does_not_block () =
  (* The EBR Figure-1 failure mode, fixed: a thread parked on an old
     announcement is neutralized, so reclamation continues without it. *)
  let heap, mon, sched = setup () in
  let g = Era_smr.Debra.create heap ~nthreads:2 in
  let t0 = Era_smr.Debra.thread g (Sched.external_ctx sched ~tid:0) in
  let t1 = Era_smr.Debra.thread g (Sched.external_ctx sched ~tid:1) in
  (* Thread 0 announces an epoch and never runs again. *)
  Era_smr.Debra.begin_op t0;
  for i = 0 to 99 do
    Era_smr.Debra.with_op t1 (fun () ->
        let w = Era_smr.Debra.alloc t1 ~key:i in
        Era_smr.Debra.retire t1 w)
  done;
  Alcotest.(check bool) "stalled thread neutralized" true
    (Era_smr.Debra.neutralizations g > 0);
  Alcotest.(check int) "its announcement was cleared on its behalf"
    (-1)
    (Era_smr.Debra.announced g 0);
  Alcotest.(check bool)
    (Fmt.str "bounded backlog (%d)" (Monitor.retired mon))
    true
    (Monitor.retired mon <= 10)

(* ------------------------------------------------------------------ *)
(* Phase audit                                                         *)
(* ------------------------------------------------------------------ *)

let test_phase_audit_negative_control () =
  let viols = Era.Access_aware.negative_control () in
  Alcotest.(check bool) "auditor catches bad clients" true (viols <> [])

let test_registry () =
  Alcotest.(check int) "nine schemes" 9 (List.length Registry.all);
  Alcotest.(check bool) "find" true (Registry.find "vbr" <> None);
  Alcotest.(check bool) "find missing" true (Registry.find "zzz" = None);
  Alcotest.check_raises "find_exn missing"
    (Invalid_argument "Registry: unknown scheme \"zzz\"") (fun () ->
      ignore (Registry.find_exn "zzz"))

(* Every case above builds its scheme/heap/monitor state from scratch, so
   execution order must not matter. ERA_TEST_SHUFFLE=<seed> permutes the
   groups and the cases within each group to enforce that (CI runs one
   shuffled leg). *)
let maybe_shuffle suites =
  match Sys.getenv_opt "ERA_TEST_SHUFFLE" with
  | None | Some "" -> suites
  | Some seed_s ->
    let seed = Option.value ~default:1 (int_of_string_opt seed_s) in
    let st = Random.State.make [| seed |] in
    let shuffle l =
      let a = Array.of_list l in
      for i = Array.length a - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      done;
      Array.to_list a
    in
    shuffle (List.map (fun (g, cases) -> (g, shuffle cases)) suites)

let () =
  Alcotest.run "era_smr"
  @@ maybe_shuffle
    [
      ( "integration",
        audit_cases
        @ [
          Alcotest.test_case "audit conditions" `Quick test_audit_conditions;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "ebr",
        [
          Alcotest.test_case "epoch advances" `Quick test_ebr_epoch_advances;
          Alcotest.test_case "reclaims after two epochs" `Quick
            test_ebr_reclaims_after_two_epochs;
          Alcotest.test_case "stalled thread blocks reclamation" `Quick
            test_ebr_stalled_thread_blocks;
        ] );
      ( "hp",
        [
          Alcotest.test_case "protection pins node" `Quick
            test_hp_protection_pins_node;
          Alcotest.test_case "bounded backlog" `Quick test_hp_backlog_bounded;
        ] );
      ( "ibr-he",
        [
          Alcotest.test_case "ibr reservation pins" `Quick
            test_ibr_reservation_pins_interval;
          Alcotest.test_case "he era pins" `Quick test_he_era_pins_covered_nodes;
        ] );
      ( "vbr",
        [
          Alcotest.test_case "rollback on stale read" `Quick
            test_vbr_rollback_on_stale_read;
          Alcotest.test_case "constant backlog" `Quick
            test_vbr_constant_backlog;
        ] );
      ( "nbr",
        [
          Alcotest.test_case "neutralization restarts reader" `Quick
            test_nbr_neutralization_restarts_reader;
          Alcotest.test_case "backlog bounded with stalled reader" `Quick
            test_nbr_backlog_bounded_with_stalled_reader;
        ] );
      ( "debra",
        [
          Alcotest.test_case "epochs advance, bags free" `Quick
            test_debra_epoch_advances_and_reclaims;
          Alcotest.test_case "neutralization restarts reader" `Quick
            test_debra_neutralization_restarts_reader;
          Alcotest.test_case "stalled thread does not block" `Quick
            test_debra_stalled_thread_does_not_block;
        ] );
      ( "phase-audit",
        [
          Alcotest.test_case "negative control" `Quick
            test_phase_audit_negative_control;
        ] );
    ]

#!/bin/sh
# One-command perf check: rebuild, run the quick benchmark suite, and
# gate the result against the committed baseline bench/BENCH_quick.json
# with bench_compare. Tolerances are deliberately loose — the baseline
# was recorded on one machine and this script must not flap on another,
# or on a loaded single core. Tighten them when chasing a regression:
#
#   bench/check_perf.sh [extra bench_compare flags...]
#
# Exit status is bench_compare's: 0 = within tolerance, 1 = regression
# (throughput, native backlog blow-up, or suite-timing slowdown).
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp -t BENCH_check.XXXXXX.json)
trap 'rm -f "$out"' EXIT

dune build bench/main.exe bin/bench_compare.exe
dune exec --no-build bench/main.exe -- --quick --json "$out"
dune exec --no-build bin/bench_compare.exe -- bench/BENCH_quick.json "$out" \
  --max-regression 60 \
  --backlog-factor 3 --backlog-slack 512 \
  --max-suite-regression 100 --suite-slack 0.25 \
  --require B6/trace_off_overhead \
  --require E15/explore_states_per_sec \
  --require E16/michael+ebr/zipf-1m-hot@1d \
  --require E17/saturation \
  --require E18/michael+debra/zipf-1m-hot@1d \
  --require E19/recorder_off/michael+ebr \
  "$@"

(* Benchmark and experiment harness: regenerates every figure and claim
   table of the paper (experiments E1-E9 of DESIGN.md), then runs the
   Bechamel microbenchmarks (B1-B6). Besides the human-readable tables,
   every experiment emits machine-readable rows into one BENCH_*.json
   file (see lib/metrics) — the trajectory bin/bench_compare.exe gates
   future changes against.

     dune exec bench/main.exe                         # everything
     dune exec bench/main.exe -- --quick              # smaller parameters
     dune exec bench/main.exe -- --quick --json BENCH_quick.json
     dune exec bench/main.exe -- --only E8,E9 --schemes ebr,hp *)

open Bechamel
module Sched = Era_sched.Sched
module M = Era_metrics.Metrics
module Rc = Era_metrics.Run_config

let cfg = Rc.parse ~prog:"bench/main.exe" ()
let quick = cfg.Rc.quick
let sink = M.sink ()
let emit = M.add sink
let want = Rc.selects_experiment cfg
let want_scheme = Rc.selects_scheme cfg

let sim_schemes () =
  List.filter
    (fun s -> want_scheme (Era_smr.Registry.name_of s))
    Era_smr.Registry.all

let section title = Fmt.pr "@.==== %s ====@.@." title

(* ------------------------------------------------------------------ *)
(* E1: Figure 1                                                        *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1 | Figure 1: the Theorem 6.1 execution (Harris list, N=2)";
  let rounds = Rc.rounds_or cfg (if quick then 128 else 1024) in
  let results = List.map (Era.Figure1.run ~rounds) (sim_schemes ()) in
  List.iter (fun r -> Fmt.pr "  %a@." Era.Figure1.pp_result r) results;
  (* The figure's series: retired backlog vs churn round. *)
  Fmt.pr "@.  retired backlog after n churn rounds (the figure's series):@.";
  let points =
    List.filter (fun p -> p <= rounds) [ 16; 64; 256; 1024 ]
  in
  Fmt.pr "  %-6s" "scheme";
  List.iter (fun p -> Fmt.pr "%8s" ("n=" ^ string_of_int p)) points;
  Fmt.pr "@.";
  List.iter
    (fun r ->
      Fmt.pr "  %-6s" r.Era.Figure1.scheme;
      List.iter
        (fun p ->
          match List.assoc_opt p r.Era.Figure1.series with
          | Some v -> Fmt.pr "%8d" v
          | None -> Fmt.pr "%8s" "-")
        points;
      Fmt.pr "@.")
    results;
  List.iter
    (fun r ->
      let note, max_backlog, extra =
        match r.Era.Figure1.outcome with
        | Era.Figure1.Robustness_violated { retired_end; max_active } ->
          ( "ROBUSTNESS VIOLATED",
            retired_end,
            [ ("max_active", float_of_int max_active) ] )
        | Era.Figure1.Safety_violated _ -> ("SAFETY VIOLATED", 0, [])
        | Era.Figure1.Survived { retired_peak } ->
          ("survived", retired_peak, [])
      in
      emit
        (M.row ~experiment:"E1" ~label:("figure1/" ^ r.Era.Figure1.scheme)
           ~scheme:r.Era.Figure1.scheme ~structure:"harris-list"
           ~total_ops:rounds ~max_backlog ~note ~extra ()))
    results

(* ------------------------------------------------------------------ *)
(* E2: Figure 2                                                        *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2 | Figure 2: protection defeated on Harris's list";
  let results = List.map Era.Figure2.run (sim_schemes ()) in
  List.iter (fun r -> Fmt.pr "  %a@." Era.Figure2.pp_result r) results;
  List.iter
    (fun r ->
      let note, max_backlog =
        match r.Era.Figure2.outcome with
        | Era.Figure2.Unsafe _ -> ("UNSAFE", 0)
        | Era.Figure2.Safe_completion { retired_backlog } ->
          ("safe", retired_backlog)
      in
      emit
        (M.row ~experiment:"E2" ~label:("figure2/" ^ r.Era.Figure2.scheme)
           ~scheme:r.Era.Figure2.scheme ~structure:"harris-list" ~max_backlog
           ~note ()))
    results

(* ------------------------------------------------------------------ *)
(* E3: robustness classification                                       *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3 | Robustness classes (Definitions 5.1/5.2)";
  let churn_points = if quick then [ 64; 256 ] else [ 128; 256; 512; 1024 ] in
  let size_points = if quick then [ 32; 96 ] else [ 32; 64; 128; 256 ] in
  let ms =
    List.map
      (Era.Robustness.classify ~churn_points ~size_points)
      (sim_schemes ())
  in
  List.iter (fun m -> Fmt.pr "  %a@." Era.Robustness.pp_measurement m) ms;
  List.iter
    (fun m ->
      emit
        (M.row ~experiment:"E3"
           ~label:("robustness/" ^ m.Era.Robustness.scheme)
           ~scheme:m.Era.Robustness.scheme ~structure:"harris-list"
           ~note:(Era.Robustness.clazz_name m.Era.Robustness.clazz)
           ~extra:
             [
               ("churn_slope", m.Era.Robustness.churn_slope);
               ("size_slope", m.Era.Robustness.size_slope);
             ]
           ()))
    ms

(* ------------------------------------------------------------------ *)
(* E4: applicability matrix                                            *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4 | Applicability matrix (Definitions 5.4/5.6)";
  let fuzz_runs = Rc.fuzz_or cfg (if quick then 4 else 12) in
  let matrix =
    List.map
      (fun s ->
        ( Era_smr.Registry.name_of s,
          List.map
            (fun st -> (st, Era.Applicability.run ~fuzz_runs s st))
            Era.Applicability.structures ))
      (sim_schemes ())
  in
  Fmt.pr "  %-6s" "";
  List.iter
    (fun st -> Fmt.pr "%-15s" (Era.Applicability.structure_name st))
    Era.Applicability.structures;
  Fmt.pr "@.";
  List.iter
    (fun (scheme, verdicts) ->
      Fmt.pr "  %-6s" scheme;
      List.iter
        (fun (_, v) ->
          Fmt.pr "%-15s"
            (if Era.Applicability.applicable v then "yes" else "NO"))
        verdicts;
      Fmt.pr "@.")
    matrix;
  List.iter
    (fun (scheme, verdicts) ->
      List.iter
        (fun (st, v) ->
          let stname = Era.Applicability.structure_name st in
          emit
            (M.row ~experiment:"E4"
               ~label:(scheme ^ "/" ^ stname)
               ~scheme ~structure:stname
               ~note:(if Era.Applicability.applicable v then "yes" else "NO")
               ~extra:
                 [
                   ( "violations",
                     float_of_int v.Era.Applicability.violations );
                   ( "non_linearizable",
                     float_of_int v.Era.Applicability.non_linearizable );
                   ( "adversarial_unsafe",
                     if v.Era.Applicability.adversarial_unsafe then 1. else 0.
                   );
                 ]
               ()))
        verdicts)
    matrix

(* ------------------------------------------------------------------ *)
(* E5: easy-integration audit                                          *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5 | Easy-integration audit (Definition 5.3)";
  List.iter
    (fun s ->
      Fmt.pr "  %a@." Era_smr.Integration.pp_spec
        (Era_smr.Registry.integration_of s);
      let name = Era_smr.Registry.name_of s in
      let easy = Era_smr.Registry.easily_integrated s in
      emit
        (M.row ~experiment:"E5" ~label:("integration/" ^ name) ~scheme:name
           ~note:(if easy then "easy" else "not-easy")
           ()))
    (sim_schemes ())

(* ------------------------------------------------------------------ *)
(* E6: the ERA matrix                                                  *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6 | The ERA matrix (Theorem 6.1)";
  (* The theorem check quantifies over every scheme; --schemes only
     filters which rows are emitted, not which are computed. *)
  let rows =
    if quick then
      Era.Era_matrix.compute ~fuzz_runs:4 ~churn_points:[ 64; 256 ]
        ~size_points:[ 32; 96 ] ()
    else Era.Era_matrix.compute ~fuzz_runs:8 ()
  in
  Fmt.pr "%a" Era.Era_matrix.pp_table rows;
  List.iter
    (fun (r : Era.Era_matrix.row) ->
      if want_scheme r.scheme then
        emit
          (M.row ~experiment:"E6" ~label:("era/" ^ r.scheme) ~scheme:r.scheme
             ~note:
               (Fmt.str "E=%b R=%s A=%b" r.easy
                  (Era.Robustness.clazz_name r.robustness)
                  r.widely_applicable)
             ~extra:
               [
                 ( "properties_held",
                   float_of_int (Era.Era_matrix.properties_held r) );
                 ("churn_slope", r.churn_slope);
                 ("size_slope", r.size_slope);
               ]
             ()))
    rows

(* ------------------------------------------------------------------ *)
(* E7: access-aware audit                                              *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7 | Access-aware discipline audit (Appendices C/D)";
  let reports = Era.Access_aware.audit_all ~runs:(if quick then 3 else 8) () in
  List.iter (fun r -> Fmt.pr "  %a@." Era.Access_aware.pp_report r) reports;
  Fmt.pr "  negative control flags: %a@."
    Fmt.(list ~sep:semi (pair ~sep:(any " x") string int))
    (Era.Access_aware.negative_control ());
  List.iter
    (fun (r : Era.Access_aware.report) ->
      let stname = Era.Applicability.structure_name r.structure in
      let violations =
        List.fold_left (fun a (_, n) -> a + n) 0 r.discipline_violations
      in
      emit
        (M.row ~experiment:"E7" ~label:("access-aware/" ^ stname)
           ~structure:stname ~total_ops:r.total_ops
           ~note:(if Era.Access_aware.clean r then "clean" else "VIOLATIONS")
           ~extra:[ ("discipline_violations", float_of_int violations) ]
           ()))
    reports

(* ------------------------------------------------------------------ *)
(* E8/E9: native throughput and backlog                                *)
(* ------------------------------------------------------------------ *)

let emit_native experiment category r =
  emit (Era_native.Throughput.to_row ~experiment ~category r)

let e8 () =
  section "E8 | Native: Harris vs Michael's HP-compatible list";
  let open Era_native.Throughput in
  let ops = Rc.ops_or cfg (if quick then 50_000 else 200_000) in
  let grid =
    [
      (Harris, `Ebr, Churn, 1); (Michael, `Ebr, Churn, 1);
      (Michael, `Hp, Churn, 1); (Michael, `Ibr, Churn, 1);
      (Harris, `Ebr, Churn, 2); (Michael, `Hp, Churn, 2);
      (Harris, `Ebr, Read_heavy, 1); (Michael, `Ebr, Read_heavy, 1);
      (Michael, `Hp, Read_heavy, 1); (Michael, `Ibr, Read_heavy, 1);
      (Harris, `Ebr, Read_heavy, 2); (Michael, `Hp, Read_heavy, 2);
    ]
  in
  let grid =
    match cfg.Rc.domains with
    | None -> grid
    | Some n ->
      List.sort_uniq compare
        (List.map (fun (k, s, m, _) -> (k, s, m, n)) grid)
  in
  List.iter
    (fun (kind, scheme, mix, domains) ->
      if want_scheme (scheme_name scheme) then begin
        let r = e8_row kind ~scheme mix ~domains ~ops_per_domain:ops in
        Fmt.pr "  %a@." pp_result r;
        emit_native "E8" "native-throughput" r
      end)
    grid

let e8b () =
  section "E8b | Native: stack and queue throughput per scheme";
  let open Era_native.Throughput in
  let ops = Rc.ops_or cfg (if quick then 50_000 else 200_000) in
  let domains = Rc.domains_or cfg 2 in
  List.iter
    (fun (scheme : [ `Ebr | `Hp | `Ibr | `None ]) ->
      if
        want_scheme
          (scheme_name (scheme :> [ `Debra | `Ebr | `Hp | `Ibr | `None ]))
      then begin
        let s = stack_row ~scheme ~domains ~ops_per_domain:ops () in
        Fmt.pr "  %a@." pp_result s;
        emit_native "E8b" "native-throughput" s;
        let q = queue_row ~scheme ~domains ~ops_per_domain:ops () in
        Fmt.pr "  %a@." pp_result q;
        emit_native "E8b" "native-throughput" q
      end)
    [ `None; `Ebr; `Hp; `Ibr ]

let e9 () =
  section "E9 | Native: retired backlog with a stalled domain";
  let open Era_native.Throughput in
  let ops = Rc.ops_or cfg (if quick then 50_000 else 200_000) in
  List.iter
    (fun scheme ->
      if
        want_scheme
          (scheme_name (scheme :> [ `Debra | `Ebr | `Hp | `Ibr | `None ]))
      then begin
        let r = e9_row ~scheme ~churn_ops:ops () in
        Fmt.pr "  %a@." pp_result r;
        emit_native "E9" "native-backlog" r
      end)
    [ `Ebr; `Hp; `Ibr; `Debra ]

(* ------------------------------------------------------------------ *)
(* E16: native throughput at million-key Zipf traffic                  *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section "E16 | Native at scale: million-key Zipf vs uniform-small";
  let open Era_native.Throughput in
  let ops = Rc.ops_or cfg (if quick then 50_000 else 200_000) in
  match Era_metrics.Run_config.(cfg.keys, cfg.zipf, cfg.mix) with
  | (Some _, _, _) | (_, Some _, _) | (_, _, Some _) ->
    (* CLI-specified workload: one row per scheme, no grid. *)
    let contains_pct =
      match cfg.Era_metrics.Run_config.mix with
      | None -> 90
      | Some m -> (
        match contains_pct_of_mix m with
        | Ok p -> p
        | Error e -> invalid_arg ("--mix: " ^ e))
    in
    let workload =
      custom_workload ?zipf:cfg.Era_metrics.Run_config.zipf
        ~keys:(Option.value cfg.Era_metrics.Run_config.keys ~default:1024)
        ~contains_pct ()
    in
    let domains = Rc.domains_or cfg 2 in
    List.iter
      (fun scheme ->
        if want_scheme (scheme_name scheme) then begin
          let r =
            e16_row Michael ~scheme ~workload ~domains ~ops_per_domain:ops
          in
          Fmt.pr "  %a@." pp_result r;
          emit_native "E16" "native-throughput" r
        end)
      [ `None; `Ebr; `Hp; `Ibr ]
  | None, None, None ->
    (* The standard grid. zipf-1m (s=0.99) cells are walk-bound — the
       median key rank is in the thousands, so each op traverses
       hundreds of nodes; they run at ops/4 and their signal is
       backlog, not mops. zipf-1m-hot (s=1.5) concentrates on the list
       head, walks are short, and per-op SMR overhead dominates — that
       is the cell the perf gate watches. *)
    let grid =
      [
        (Michael, `Ebr, uniform_small, 1, ops);
        (Michael, `Hp, uniform_small, 1, ops);
        (Michael, `Ibr, uniform_small, 1, ops);
        (Harris, `Ebr, uniform_small, 1, ops);
        (Michael, `Ebr, zipf_1m_hot, 1, ops);
        (Michael, `Hp, zipf_1m_hot, 1, ops);
        (Michael, `Ibr, zipf_1m_hot, 1, ops);
        (Harris, `Ebr, zipf_1m_hot, 1, ops);
        (Michael, `Ebr, zipf_1m, 1, ops / 4);
        (Michael, `Hp, zipf_1m, 1, ops / 4);
        (Michael, `Ebr, uniform_small, 2, ops);
        (Michael, `Hp, uniform_small, 2, ops);
        (Michael, `Ebr, zipf_1m_hot, 2, ops);
        (Michael, `Hp, zipf_1m_hot, 2, ops);
        (Michael, `Ebr, zipf_1m, 2, ops / 4);
        (Michael, `Hp, zipf_1m, 2, ops / 4);
      ]
    in
    let grid =
      match cfg.Rc.domains with
      | None -> grid
      | Some n ->
        List.sort_uniq compare
          (List.map (fun (k, s, w, _, o) -> (k, s, w, n, o)) grid)
    in
    List.iter
      (fun (kind, scheme, workload, domains, ops) ->
        if want_scheme (scheme_name scheme) then begin
          let r = e16_row kind ~scheme ~workload ~domains ~ops_per_domain:ops in
          Fmt.pr "  %a@." pp_result r;
          emit_native "E16" "native-throughput" r
        end)
      grid;
    (* E9 at scale: the stall row under the hot-Zipf traffic — the
       robustness/space trade-off does not soften when the key space
       grows, because EBR's backlog tracks churn volume, not key count. *)
    List.iter
      (fun scheme ->
        if
          want_scheme
            (scheme_name (scheme :> [ `Debra | `Ebr | `Hp | `Ibr | `None ]))
        then begin
          let r =
            e9_row ~workload:zipf_1m_hot ~scheme ~churn_ops:(ops / 2) ()
          in
          Fmt.pr "  %a@." pp_result r;
          emit_native "E16" "native-backlog" r
        end)
      [ `Ebr; `Hp; `Ibr; `Debra ]

(* ------------------------------------------------------------------ *)
(* E10/E11: ablations                                                  *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10 | Ablation: HP scan threshold (space vs scan-frequency)";
  let rows =
    Era.Ablation.hp_sweep
      ~thresholds:(if quick then [ 2; 32 ] else [ 2; 8; 32; 128 ])
      ()
  in
  List.iter (fun r -> Fmt.pr "  %a@." Era.Ablation.pp_hp_row r) rows;
  Fmt.pr
    "  (the bounded backlog tracks the threshold: the Braginsky et al. \
     space/time dial)@.";
  List.iter
    (fun (r : Era.Ablation.hp_row) ->
      emit
        (M.row ~experiment:"E10"
           ~label:(Fmt.str "hp-threshold/%d" r.threshold)
           ~scheme:"hp" ~structure:"michael-list" ~max_backlog:r.max_backlog
           ~extra:
             [
               ("threshold", float_of_int r.threshold);
               ("slots", float_of_int r.slots);
               ("steps", float_of_int r.steps);
             ]
           ()))
    rows

let e11 () =
  section "E11 | Ablation: IBR epoch granularity vs the theorem";
  let rows =
    Era.Ablation.ibr_sweep ~rates:(if quick then [ 1; 16 ] else [ 1; 4; 16; 64 ]) ()
  in
  List.iter (fun r -> Fmt.pr "  %a@." Era.Ablation.pp_ibr_row r) rows;
  Fmt.pr
    "  (coarse epochs dodge the stock Figure 2 schedule but Figure 1 \
     defeats every@.   granularity: no tuning restores wide \
     applicability)@.";
  List.iter
    (fun (r : Era.Ablation.ibr_row) ->
      emit
        (M.row ~experiment:"E11"
           ~label:(Fmt.str "ibr-rate/%d" r.allocs_per_epoch)
           ~scheme:"ibr" ~structure:"harris-list"
           ~max_backlog:r.size_backlog
           ~note:(r.figure1 ^ "/" ^ r.figure2)
           ~extra:[ ("allocs_per_epoch", float_of_int r.allocs_per_epoch) ]
           ()))
    rows

(* ------------------------------------------------------------------ *)
(* E12: systematic exploration                                         *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section
    "E12 | Systematic exploration: bounded search rediscovers Figures 1-2";
  let module Ex = Era_explore.Explore in
  let budget = if quick then 2_000 else 20_000 in
  (* Safety cells reuse the Figure 2 setting (short churn, no bound);
     the robustness pair reruns the Figure 1 dichotomy — same workload
     and backlog bound, EBR trips the robustness horn while HP trips the
     safety horn instead. *)
  let cells =
    [
      ("hp", "safety", 14, None); ("he", "safety", 14, None);
      ("ibr", "safety", 14, None); ("ebr", "robust24", 60, Some 24);
      ("hp", "robust24", 60, Some 24);
    ]
  in
  List.iter
    (fun (name, kind, ops_per_thread, robustness_bound) ->
      if want_scheme name then
        match Era_smr.Registry.find name with
        | None -> ()
        | Some scheme ->
          let t0 = Unix.gettimeofday () in
          let config = { Ex.default_config with Ex.max_runs = budget } in
          let r =
            Era.Applicability.explore ~config ~seed:2 ~ops_per_thread
              ?robustness_bound scheme Era.Applicability.Harris
          in
          let elapsed_s = Unix.gettimeofday () -. t0 in
          let s = r.Ex.res_stats in
          let note, script_len =
            match r.Ex.res_cex with
            | Some c ->
              ( Era_sim.Event.violation_name c.Ex.c_violation.Ex.v_kind,
                List.length c.Ex.c_script )
            | None -> ("none", 0)
          in
          Fmt.pr "  %-4s %-8s %a -> %s (%d-instr script, %.0f states/s)@."
            name kind Ex.pp_stats s note script_len
            (float_of_int s.Ex.states /. Float.max elapsed_s 1e-9);
          emit
            (M.row ~experiment:"E12"
               ~label:(Fmt.str "explore/%s/%s" name kind)
               ~scheme:name ~structure:"harris-list" ~elapsed_s ~note
               ~extra:
                 [
                   ("runs", float_of_int s.Ex.runs);
                   ("states", float_of_int s.Ex.states);
                   ("pruned", float_of_int s.Ex.pruned);
                   ("shrink_runs", float_of_int s.Ex.shrink_runs);
                   ( "found_level",
                     float_of_int (Option.value s.Ex.cex_preemptions ~default:(-1))
                   ); ("script_len", float_of_int script_len);
                   ( "states_per_sec",
                     float_of_int s.Ex.states /. Float.max elapsed_s 1e-9 );
                   ("domains", float_of_int s.Ex.domains_used);
                 ]
               ()))
    cells

(* ------------------------------------------------------------------ *)
(* E13: parallel exploration scaling                                   *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13 | Parallel exploration: domains scaling sweep";
  let module Ex = Era_explore.Explore in
  let hw = Domain.recommended_domain_count () in
  Fmt.pr "  (hardware parallelism: %d domain%s recommended — speedup is \
          bounded by it)@."
    hw
    (if hw = 1 then "" else "s");
  (* Two cells per sweep: the Figure 2 target (hp — the search races to a
     violation, states/sec measures aggregate search throughput) and the
     EBR coverage cell (no violation exists, every domain count explores
     the same fixed run budget — the cleanest scaling measurement).
     Small searches are repeated so spawn overhead and timer noise
     amortize. *)
  let repeats = if quick then 3 else 6 in
  let cells =
    [
      ("hp", "figure2", None, 2_000); ("ebr", "coverage", None, 400);
    ]
  in
  let domain_counts = [ 1; 2; 4 ] in
  List.iter
    (fun (name, kind, robustness_bound, budget) ->
      if want_scheme name then
        match Era_smr.Registry.find name with
        | None -> ()
        | Some scheme ->
          let base_sps = ref 0. in
          List.iter
            (fun domains ->
              let config =
                {
                  Ex.default_config with
                  Ex.max_runs = budget;
                  domains;
                  shrink = false;
                }
              in
              let states = ref 0 in
              let runs = ref 0 in
              let found_level = ref (-1) in
              let found_kind = ref "none" in
              let replays = ref true in
              let t0 = Unix.gettimeofday () in
              for _ = 1 to repeats do
                let target =
                  Era.Applicability.explore_target ~seed:2 ?robustness_bound
                    scheme Era.Applicability.Harris
                in
                let r = Ex.explore ~config target in
                let s = r.Ex.res_stats in
                states := !states + s.Ex.states;
                runs := !runs + s.Ex.runs;
                match r.Ex.res_cex with
                | None -> ()
                | Some c ->
                  found_level :=
                    Option.value s.Ex.cex_preemptions ~default:(-1);
                  found_kind :=
                    Era_sim.Event.violation_name c.Ex.c_violation.Ex.v_kind;
                  (* Every violation a parallel search reports must
                     replay sequentially to the same violation kind. *)
                  replays :=
                    !replays
                    && (match (Ex.replay target c).Ex.rp_violation with
                       | Some v -> v.Ex.v_kind = c.Ex.c_violation.Ex.v_kind
                       | None -> false)
              done;
              let elapsed_s = Unix.gettimeofday () -. t0 in
              let sps = float_of_int !states /. Float.max elapsed_s 1e-9 in
              if domains = 1 then base_sps := sps;
              let speedup = sps /. Float.max !base_sps 1e-9 in
              Fmt.pr
                "  %-4s %-8s domains=%d  %7d runs %9d states  %9.0f \
                 states/s  speedup %.2fx  found=%s@%d  replays=%b@."
                name kind domains !runs !states sps speedup !found_kind
                !found_level !replays;
              emit
                (M.row ~experiment:"E13"
                   ~label:(Fmt.str "explore-scaling/%s/%s/d%d" name kind domains)
                   ~scheme:name ~structure:"harris-list" ~domains ~elapsed_s
                   ~note:(Fmt.str "%s@%d" !found_kind !found_level)
                   ~extra:
                     [
                       ("domains", float_of_int domains);
                       ("hw_domains", float_of_int hw);
                       ("repeats", float_of_int repeats);
                       ("runs", float_of_int !runs);
                       ("states", float_of_int !states);
                       ("states_per_sec", sps);
                       ("speedup", speedup);
                       ( "found_level", float_of_int !found_level );
                       ("replays_ok", if !replays then 1. else 0.);
                     ]
                   ()))
            domain_counts)
    cells

(* ------------------------------------------------------------------ *)
(* E15: explorer inner-loop rewrite — throughput, DPOR, stealing       *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15 | Explorer rewrite: states/sec, DPOR reduction, work stealing";
  let module Ex = Era_explore.Explore in
  let target () =
    Era.Applicability.explore_target ~seed:2 (Era_smr.Registry.find_exn "hp")
      Era.Applicability.Harris
  in
  (* (a) The headline single-domain throughput on the E13 hp/figure2
     cell, same methodology (shrink off, repeats amortize setup) — the
     row bench_compare gates against the committed baseline. The
     rewrite's wins are structural: children share the parent's choices
     array instead of materializing per-child prefixes (previously ~3/4
     of search time), and decision records are packed ints. *)
  let repeats = if quick then 6 else 12 in
  let config = { Ex.default_config with Ex.max_runs = 2_000; shrink = false } in
  let states = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to repeats do
    let r = Ex.explore ~config (target ()) in
    states := !states + r.Ex.res_stats.Ex.states
  done;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let sps = float_of_int !states /. Float.max elapsed_s 1e-9 in
  Fmt.pr "  classic d1    %9d states  %9.0f states/s@." !states sps;
  emit
    (M.row ~experiment:"E15" ~label:"explore_states_per_sec" ~scheme:"hp"
       ~structure:"harris-list" ~domains:1 ~elapsed_s
       ~extra:[ ("states_per_sec", sps); ("repeats", float_of_int repeats) ]
       ());
  (* (b) DPOR reduction on a violation-free cell (the search must
     exhaust the space, not race to a counterexample): runs needed to
     cover the bounded schedule space with and without sleep sets. The
     bound must be >= 2 for sleep sets to cut {e runs} at all: with two
     threads at bound 1 a deviation's sub-deviations are already
     preemption-bounded away, so sleeping only shortens runs (fewer
     states), never skips them. *)
  let ebr_target () =
    Era.Applicability.explore_target ~seed:2 ~ops_per_thread:5
      (Era_smr.Registry.find_exn "ebr")
      Era.Applicability.Harris
  in
  let cover dpor =
    let config =
      {
        Ex.default_config with
        Ex.max_preemptions = 2;
        max_runs = 100_000;
        shrink = false;
        dpor;
      }
    in
    let t0 = Unix.gettimeofday () in
    let r = Ex.explore ~config (ebr_target ()) in
    (r.Ex.res_stats, Unix.gettimeofday () -. t0)
  in
  let classic, classic_s = cover false in
  let dpor, dpor_s = cover true in
  let reduction =
    float_of_int classic.Ex.runs /. float_of_int (max dpor.Ex.runs 1)
  in
  let exhausted = dpor.Ex.levels_completed >= 3 in
  Fmt.pr
    "  ebr coverage (bound 2): classic %d runs %.2fs | dpor %d runs %.2fs \
     (%d sleep cuts) | reduction %.2fx%s@."
    classic.Ex.runs classic_s dpor.Ex.runs dpor_s dpor.Ex.sleep_cuts reduction
    (if exhausted then "" else "  [budget-truncated: not a coverage claim]");
  emit
    (M.row ~experiment:"E15" ~label:"dpor-reduction" ~scheme:"ebr"
       ~structure:"harris-list" ~domains:1 ~elapsed_s:(classic_s +. dpor_s)
       ~extra:
         [
           ("classic_runs", float_of_int classic.Ex.runs);
           ("dpor_runs", float_of_int dpor.Ex.runs);
           ("sleep_cuts", float_of_int dpor.Ex.sleep_cuts);
           ("reduction", reduction);
           ("exhausted", if exhausted then 1. else 0.);
         ]
       ());
  (* (c) Work stealing vs the level-synchronous queue at 2 and 4
     domains, on the same coverage cell (fixed budget so every engine
     does the same amount of work). *)
  let hw = Domain.recommended_domain_count () in
  List.iter
    (fun domains ->
      let engine steal =
        let config =
          {
            Ex.default_config with
            Ex.max_runs = 2_000;
            shrink = false;
            domains;
            steal;
          }
        in
        let t0 = Unix.gettimeofday () in
        let r = Ex.explore ~config (ebr_target ()) in
        (r.Ex.res_stats.Ex.states, Unix.gettimeofday () -. t0)
      in
      let qs, qt = engine false in
      let ss, st = engine true in
      let q_sps = float_of_int qs /. Float.max qt 1e-9 in
      let s_sps = float_of_int ss /. Float.max st 1e-9 in
      Fmt.pr
        "  d%d  queue %9.0f states/s | steal %9.0f states/s  (%.2fx, hw %d)@."
        domains q_sps s_sps
        (s_sps /. Float.max q_sps 1e-9)
        hw;
      emit
        (M.row ~experiment:"E15"
           ~label:(Fmt.str "steal-vs-queue/d%d" domains)
           ~scheme:"ebr" ~structure:"harris-list" ~domains
           ~elapsed_s:(qt +. st)
           ~extra:
             [
               ("queue_states_per_sec", q_sps);
               ("steal_states_per_sec", s_sps);
               ("steal_speedup", s_sps /. Float.max q_sps 1e-9);
               ("hw_domains", float_of_int hw);
             ]
           ()))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* E18: DEBRA+ native cost — neutralizable epochs vs plain EBR         *)
(* ------------------------------------------------------------------ *)

let e18 () =
  section "E18 | Native DEBRA+: neutralizable epochs vs plain EBR";
  let open Era_native.Throughput in
  let ops = Rc.ops_or cfg (if quick then 50_000 else 200_000) in
  (* DEBRA+'s fast path is N_ebr's plus two flag loads per protected
     read and a per-observer lag sweep on the amortized slow path. The
     EBR rows here are same-run baselines: the honest comparison is
     within one process on one host, not against the committed
     baseline's machine. zipf-1m-hot (short walks, per-op overhead
     dominated) is where the cost must show — the perf gate watches the
     michael+debra cell and bench_compare's relative tolerance covers
     host-to-host drift. *)
  let grid =
    [
      (`Ebr, uniform_small, 1, ops);
      (`Debra, uniform_small, 1, ops);
      (`Ebr, zipf_1m_hot, 1, ops);
      (`Debra, zipf_1m_hot, 1, ops);
      (`Ebr, zipf_1m_hot, 2, ops);
      (`Debra, zipf_1m_hot, 2, ops);
    ]
  in
  let grid =
    match cfg.Rc.domains with
    | None -> grid
    | Some n ->
      List.sort_uniq compare
        (List.map (fun (s, w, _, o) -> (s, w, n, o)) grid)
  in
  List.iter
    (fun (scheme, workload, domains, ops) ->
      if want_scheme (scheme_name scheme) then begin
        let r = e16_row Michael ~scheme ~workload ~domains ~ops_per_domain:ops in
        Fmt.pr "  %a@." pp_result r;
        emit_native "E18" "native-throughput" r
      end)
    grid;
  (* The robustness counterpart, uniform churn: the same stall that
     blows EBR's backlog up in E9 gets neutralized here, so the backlog
     row is bounded and reclamation keeps pace. *)
  let r = e9_row ~scheme:`Debra ~churn_ops:(ops / 2) () in
  Fmt.pr "  %a@." pp_result r;
  emit_native "E18" "native-backlog" r

(* ------------------------------------------------------------------ *)
(* E19: flight recorder — detached overhead + reclamation timelines    *)
(* ------------------------------------------------------------------ *)

(* The recorder-off row re-times E16's hot cell (michael+ebr,
   zipf-1m-hot) with the recorder detached: every hook is then a single
   [cap <> 0] branch on a null handle, mirroring the sim tracer's
   off-path contract, so detached throughput must stay at seed speed —
   check_perf.sh --require's that row. Recorder-on rows record the
   honest cost of full instrumentation (per-domain event rings, one
   monotonic clock pair per op for the latency histograms, and
   coordinator-sampled backlog / epoch-lag gauges); recording is
   opt-in, so those rows are informational. The stall rows put a
   timeline behind the robustness story: with domain 0 parked
   mid-operation, EBR's epoch lag and backlog climb for the stall's
   whole duration while DEBRA+'s neutralization caps both — the merged
   Perfetto trace shows the restart span the cap costs. *)
let e19 () =
  section "E19 | Flight recorder: detached overhead + stall timelines";
  let open Era_native.Throughput in
  let module Flight = Era_obs.Flight in
  let ops = Rc.ops_or cfg (if quick then 40_000 else 150_000) in
  let domains = 2 in
  let workload = zipf_1m_hot in
  ignore
    (e16_row Michael ~scheme:`Ebr ~workload ~domains
       ~ops_per_domain:(max 1 (ops / 4)));
  (* warm-up *)
  List.iter
    (fun scheme ->
      let name = scheme_name scheme in
      if want_scheme name then begin
        let off =
          e16_row Michael ~scheme ~workload ~domains ~ops_per_domain:ops
        in
        if scheme = `Ebr then
          emit
            (M.row ~experiment:"E19" ~label:"recorder_off/michael+ebr"
               ~category:"native-throughput" ~scheme:name
               ~structure:"michael-list" ~domains ~total_ops:off.total_ops
               ~elapsed_s:off.elapsed_s ~mops:off.mops
               ~max_backlog:off.max_backlog ~reclaimed:off.reclaimed
               ~retired:off.retired ~scans:off.scans ());
        let fl = Flight.create ~ndomains:domains () in
        let on =
          e16_row Michael ~flight:fl ~scheme ~workload ~domains
            ~ops_per_domain:ops
        in
        let overhead_pct =
          (off.mops -. on.mops) /. Float.max off.mops 1e-9 *. 100.
        in
        Fmt.pr "  %s: off %.3f on %.3f Mops/s  (overhead %+.1f%%, %d \
                events, %d dropped)@."
          name off.mops on.mops overhead_pct (Flight.total_events fl)
          (Flight.dropped fl);
        emit
          (M.row ~experiment:"E19" ~label:("recorder_on/michael+" ^ name)
             ~category:"observability" ~scheme:name ~structure:"michael-list"
             ~domains ~total_ops:on.total_ops ~elapsed_s:on.elapsed_s
             ~mops:on.mops ~max_backlog:on.max_backlog
             ~reclaimed:on.reclaimed ~retired:on.retired ~scans:on.scans
             ~extra:
               [
                 ("overhead_pct", overhead_pct);
                 ("events", float_of_int (Flight.total_events fl));
                 ("dropped", float_of_int (Flight.dropped fl));
               ]
             ())
      end)
    [ `Ebr; `Debra ];
  (* Reclamation-lag timelines: the recorder rides along on the E9
     stall rows; EBR vs DEBRA+ is the theorem's bounded-vs-unbounded
     contrast made visible. *)
  List.iter
    (fun scheme ->
      let name =
        scheme_name (scheme :> [ `Debra | `Ebr | `Hp | `Ibr | `None ])
      in
      if want_scheme name then begin
        let fl = Flight.create ~ndomains:3 () in
        let r = e9_row ~flight:fl ~scheme ~churn_ops:ops () in
        Fmt.pr "  %a  (%d flight events)@." pp_result r
          (Flight.total_events fl);
        emit
          (M.row ~experiment:"E19" ~label:("timeline/" ^ r.label)
             ~category:"native-backlog" ~scheme:name
             ~structure:"michael-list" ~domains:r.domains
             ~total_ops:r.total_ops ~elapsed_s:r.elapsed_s
             ~max_backlog:r.max_backlog ~reclaimed:r.reclaimed
             ~retired:r.retired ~scans:r.scans
             ~extra:
               [
                 ("events", float_of_int (Flight.total_events fl));
                 ("dropped", float_of_int (Flight.dropped fl));
               ]
             ())
      end)
    [ `Ebr; `Debra ]

(* ------------------------------------------------------------------ *)
(* E17: era_serve under load — admission, shedding, saturation         *)
(* ------------------------------------------------------------------ *)

(* Boots a real daemon (socket, accept thread, executor domains) in this
   process and drives it with the non-blocking load generator, exactly
   the way bin/era_load.exe does from outside. Two operating points:

   - under-capacity: the queue never fills, so shed MUST be 0 and every
     job must be served — an absolute correctness row, not a tuning one;
   - saturation: far more offered load than 2 workers can serve, small
     admission caps. The interesting numbers are admit throughput
     (responses/s — the daemon keeps answering even while saturated),
     shed counts, in-flight peak, and admit latency percentiles. The
     E17/saturation row is --require'd by check_perf.sh: lost must be 0
     at full saturation or the run fails.

   Probe service time is deterministic spin, so the rows are stable
   enough to gate on their invariants (lost = 0, shed = 0 under
   capacity) while throughput remains machine-dependent telemetry. *)
let e17 () =
  section "E17 | era_serve: load, shedding, saturation";
  let module Daemon = Era_serve.Daemon in
  let module Load = Era_serve.Load in
  let module Job = Era_serve.Job in
  let dir = Filename.temp_file "era_e17" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm_rf p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  let point ~label ~global_cap ~tenant_cap ~conns ~pipeline ~requests ~spin =
    let socket = Filename.concat dir (label ^ ".sock") in
    let d =
      Daemon.start
        {
          Daemon.socket_path = socket; workers = 2; global_cap; tenant_cap;
          store_dir = Filename.concat dir (label ^ "_store");
        }
    in
    let r =
      match
        Load.run
          {
            Load.socket; conns; pipeline; requests; tenants = 4;
            kind = Job.Probe { spin }; drain_timeout_s = 120.;
          }
      with
      | Ok r -> r
      | Error e -> failwith ("E17 " ^ label ^ ": " ^ e)
    in
    Daemon.stop d;
    (* the shutdown job-table dump is a runtime dropping, not a result *)
    let dump =
      Fmt.str "jobs_%s.json"
        (Filename.remove_extension (Filename.basename socket))
    in
    if Sys.file_exists dump then Sys.remove dump;
    let rps =
      float_of_int r.Load.responded /. Float.max r.Load.submit_elapsed_s 1e-9
    in
    Fmt.pr
      "  %-14s %5d reqs  admitted %5d  shed %5d  lost %d  peak %4d \
       in-flight  %6.0f admit/s  p50 %.1f ms  p99 %.1f ms@."
      label r.Load.submitted r.Load.admitted r.Load.shed r.Load.lost
      r.Load.inflight_peak rps
      (r.Load.admit_p50_us /. 1e3)
      (r.Load.admit_p99_us /. 1e3);
    emit
      (M.row ~experiment:"E17" ~label ~category:"serve" ~domains:conns
         ~total_ops:r.Load.submitted ~elapsed_s:r.Load.submit_elapsed_s
         ~note:(if r.Load.lost = 0 && r.Load.errors = 0 then "clean"
                else "LOST JOBS")
         ~extra:
           [
             ("admitted", float_of_int r.Load.admitted);
             ("shed", float_of_int r.Load.shed);
             ("errors", float_of_int r.Load.errors);
             ("lost", float_of_int r.Load.lost);
             ("served", float_of_int r.Load.served);
             ("inflight_peak", float_of_int r.Load.inflight_peak);
             ("inflight_mean", r.Load.inflight_mean);
             ("admit_rps", rps);
             ("admit_p50_us", r.Load.admit_p50_us);
             ("admit_p99_us", r.Load.admit_p99_us);
             ("drain_s", r.Load.drain_s);
           ]
         ());
    r
  in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let under =
        point ~label:"under-capacity" ~global_cap:4096 ~tenant_cap:2048
          ~conns:16 ~pipeline:4
          ~requests:(if quick then 400 else 1200)
          ~spin:100
      in
      if under.Load.shed <> 0 then
        failwith "E17: shed under capacity must be 0";
      if under.Load.lost <> 0 || under.Load.errors <> 0 then
        failwith "E17: lost jobs under capacity";
      let sat =
        point ~label:"saturation" ~global_cap:256 ~tenant_cap:64 ~conns:128
          ~pipeline:16
          ~requests:(if quick then 4_000 else 8_000)
          ~spin:2_000
      in
      if sat.Load.lost <> 0 || sat.Load.errors <> 0 then
        failwith "E17: lost jobs at saturation";
      if sat.Load.inflight_peak < 1_000 then
        failwith "E17: saturation never reached 1000 concurrent requests")

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let run_bechamel ~experiment test =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 0.5))
      ()
  in
  let raw = Benchmark.all cfg instances test in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun name r acc -> (name, r) :: acc) res []
  |> List.sort compare
  |> List.iter (fun (name, r) ->
         match Analyze.OLS.estimates r with
         | Some [ t ] ->
           Fmt.pr "  %-44s %12.1f ns/op%s@." name t
             (match Analyze.OLS.r_square r with
             | Some r2 -> Fmt.str "   (r² %.3f)" r2
             | None -> "");
           emit
             (M.row ~experiment ~label:name ~category:"microbench"
                ~extra:[ ("ns_per_op", t) ]
                ())
         | _ -> Fmt.pr "  %-44s (no estimate)@." name)

(* B1: simulated per-operation cost of each scheme's read path. *)
let b1_sim_read_cost () =
  section "B1 | Simulated contains() cost per scheme (list of 64 keys)";
  let make_one (module S : Era_smr.Smr_intf.S) =
    let mon = Era_sim.Monitor.create ~mode:`Record ~trace:false () in
    let heap = Era_sim.Heap.create mon in
    let sched = Sched.create ~nthreads:1 Sched.Round_robin heap in
    let module L = Era_sets.Harris_list.Make (S) in
    let g = S.create heap ~nthreads:1 in
    let ext = Sched.external_ctx sched ~tid:0 in
    let dl = L.create ext g in
    let h = L.handle dl ext in
    for k = 1 to 64 do
      ignore (L.insert h k)
    done;
    let i = ref 0 in
    Test.make ~name:("sim-contains/" ^ S.name)
      (Staged.stage (fun () ->
           incr i;
           ignore (L.contains h (1 + (!i mod 64)))))
  in
  run_bechamel ~experiment:"B1"
    (Test.make_grouped ~name:"sim-contains"
       (List.map make_one Era_smr.Registry.all))

(* B2: simulated alloc/retire/reclaim cycle per scheme. *)
let b2_sim_lifecycle_cost () =
  section "B2 | Simulated alloc+retire cycle per scheme";
  let make_one (module S : Era_smr.Smr_intf.S) =
    let mon = Era_sim.Monitor.create ~mode:`Record ~trace:false () in
    let heap = Era_sim.Heap.create mon in
    let sched = Sched.create ~nthreads:1 Sched.Round_robin heap in
    let g = S.create heap ~nthreads:1 in
    let t = S.thread g (Sched.external_ctx sched ~tid:0) in
    Test.make ~name:("sim-alloc-retire/" ^ S.name)
      (Staged.stage (fun () ->
           S.with_op t (fun () ->
               let w = S.alloc t ~key:1 in
               S.retire t w)))
  in
  run_bechamel ~experiment:"B2"
    (Test.make_grouped ~name:"sim-alloc-retire"
       (List.map make_one Era_smr.Registry.all))

(* B3: native read cost: the real price of HP's protect-validate. *)
let b3_native_read_cost () =
  section "B3 | Native contains() cost (Michael list of 256 keys)";
  let tests =
    let make (type a) name (module S : Era_native.Nsmr.S with type t = a) =
      let module L = Era_native.N_michael.Make (S) in
      let g = S.create ~ndomains:1 in
      let s = S.thread g 0 in
      let l = L.create () in
      for k = 1 to 256 do
        ignore (L.insert l s k)
      done;
      let i = ref 0 in
      Test.make ~name:("native-contains/" ^ name)
        (Staged.stage (fun () ->
             incr i;
             ignore (L.contains l s (1 + (!i mod 256)))))
    in
    [
      make "none" (module Era_native.N_none);
      make "ebr" (module Era_native.N_ebr);
      make "hp" (module Era_native.N_hp);
      make "ibr" (module Era_native.N_ibr);
    ]
  in
  run_bechamel ~experiment:"B3"
    (Test.make_grouped ~name:"native-contains" tests)

(* B4: linearizability checker scaling in history length. *)
let b4_checker_scaling () =
  section "B4 | Linearizability checker cost vs history length";
  let history_of_length n =
    (* A width-2 concurrent history generated from a real run. *)
    let mon = Era_sim.Monitor.create ~mode:`Raise ~trace:true () in
    let heap = Era_sim.Heap.create mon in
    let sched =
      Sched.create ~nthreads:2 (Sched.Random (Era_sim.Rng.create 5)) heap
    in
    let module L = Era_sets.Harris_list.Make (Era_smr.Ebr) in
    let g = Era_smr.Ebr.create heap ~nthreads:2 in
    let ext = Sched.external_ctx sched ~tid:0 in
    let dl = L.create ext g in
    for tid = 0 to 1 do
      Sched.spawn sched ~tid (fun ctx ->
          let ops = L.ops (L.handle dl ctx) ~record:true in
          Era_workload.Workload.run_set_ops ops
            (Era_sim.Rng.create (tid + 3))
            ~ops:(n / 2)
            ~keys:(Era_workload.Workload.Uniform 6)
            ~mix:Era_workload.Workload.balanced)
    done;
    ignore (Sched.run sched);
    Era_history.History.of_monitor mon
  in
  let tests =
    List.map
      (fun n ->
        let h = history_of_length n in
        Test.make ~name:(Fmt.str "linearize/%d-ops" n)
          (Staged.stage (fun () ->
               ignore
                 (Era_history.Linearize.check
                    (module Era_history.Spec.Int_set)
                    h))))
      [ 16; 32; 64; 128 ]
  in
  run_bechamel ~experiment:"B4" (Test.make_grouped ~name:"linearize" tests)

(* B6: observability overhead. The tracer-off run re-times the seeded
   Figure 1/2 simulations with no tracer attached — the disabled path
   must stay at seed speed, so that row is emitted as "suite-timing" and
   gated by bench_compare (check_perf.sh additionally --require's it, so
   silently dropping the experiment can't pass the gate). The tracer-on
   run records the honest cost of full instrumentation; tracing is
   opt-in, so that row is informational, not gated. *)
let b6_trace_overhead () =
  section "B6 | Trace overhead: tracer-off must stay at seed speed";
  let rounds = if quick then 128 else 512 in
  let reps = if quick then 3 else 6 in
  let workload tracer () =
    List.iter
      (fun s ->
        ignore (Era.Figure1.run ?tracer ~rounds s);
        ignore (Era.Figure2.run ?tracer s))
      Era_smr.Registry.all
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    Unix.gettimeofday () -. t0
  in
  ignore (time (workload None));
  (* warm-up *)
  let off_s = time (workload None) in
  let tr = Era_obs.Tracer.create ~capacity:(1 lsl 16) () in
  let on_s = time (workload (Some tr)) in
  let overhead_pct = (on_s -. off_s) /. Float.max off_s 1e-9 *. 100. in
  Fmt.pr "  tracer off: %.3f s   tracer on: %.3f s   overhead %+.1f%%@."
    off_s on_s overhead_pct;
  Fmt.pr "  (%d trace events captured, %d dropped by the ring)@."
    (Era_obs.Tracer.length tr)
    (Era_obs.Tracer.dropped tr);
  emit
    (M.row ~experiment:"B6" ~label:"trace_off_overhead"
       ~category:"suite-timing" ~elapsed_s:off_s ());
  emit
    (M.row ~experiment:"B6" ~label:"trace_on" ~category:"observability"
       ~elapsed_s:on_s
       ~extra:
         [
           ("overhead_pct", overhead_pct);
           ("events", float_of_int (Era_obs.Tracer.length tr));
           ("dropped", float_of_int (Era_obs.Tracer.dropped tr));
         ]
       ())

(* B5: scheduler quantum overhead. *)
let b5_scheduler_overhead () =
  section "B5 | Scheduler cost per quantum (fiber suspend/resume)";
  let test =
    Test.make ~name:"sched/quantum"
      (Staged.stage (fun () ->
           let mon = Era_sim.Monitor.create ~mode:`Record ~trace:false () in
           let heap = Era_sim.Heap.create mon in
           let sched = Sched.create ~nthreads:2 Sched.Round_robin heap in
           for tid = 0 to 1 do
             Sched.spawn sched ~tid (fun ctx ->
                 for _ = 1 to 50 do
                   Sched.yield ctx
                 done)
           done;
           ignore (Sched.run sched)))
  in
  Fmt.pr "  (one run = 2 fibers x 50 yields + setup)@.";
  run_bechamel ~experiment:"B5" test

let () =
  Fmt.pr
    "ERA theorem reproduction — experiment and benchmark harness%s@."
    (if quick then " (quick mode)" else "");
  let experiments =
    [
      ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5);
      ("E6", e6); ("E7", e7); ("E8", e8); ("E8b", e8b); ("E9", e9);
      ("E10", e10); ("E11", e11); ("E12", e12); ("E13", e13); ("E15", e15);
      ("E16", e16); ("E17", e17); ("E18", e18); ("E19", e19);
      ("B1", b1_sim_read_cost); ("B2", b2_sim_lifecycle_cost);
      ("B3", b3_native_read_cost); ("B4", b4_checker_scaling);
      ("B5", b5_scheduler_overhead); ("B6", b6_trace_overhead);
    ]
  in
  (* Each experiment gets a wall-clock "suite-timing" row, plus one
     SUITE/total row for the whole run — the series bench_compare gates
     so that hot-path regressions in the simulator itself show up even
     when every individual figure still comes out right. *)
  let suite_t0 = Unix.gettimeofday () in
  List.iter
    (fun (id, run) ->
      if want id then begin
        let t0 = Unix.gettimeofday () in
        run ();
        let elapsed_s = Unix.gettimeofday () -. t0 in
        (* E17's wall clock is dominated by deliberate queueing delay
           (saturation latency) and OS thread scheduling, so it flaps
           far beyond the suite tolerance; its correctness invariants
           are enforced in-process (lost = 0, shed = 0 under capacity)
           and its rows are --require'd, so the timing row is
           informational only. *)
        let category = if id = "E17" then "serve" else "suite-timing" in
        emit (M.row ~experiment:id ~label:"suite" ~category ~elapsed_s ())
      end)
    experiments;
  let total_s = Unix.gettimeofday () -. suite_t0 in
  emit
    (M.row ~experiment:"SUITE" ~label:"total" ~category:"suite-timing"
       ~elapsed_s:total_s ());
  Fmt.pr "@.suite wall clock: %.2f s@." total_s;
  let path = Rc.default_json_path cfg in
  let n = M.flush sink ~mode:(Rc.mode cfg) ~path in
  Fmt.pr "@.wrote %d metric rows to %s@." n path;
  Fmt.pr "@.done.@."

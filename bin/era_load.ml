(* Load generator for the era_serve daemon.

     dune exec bin/era_load.exe -- --socket era_serve.sock \
       --conns 128 --pipeline 16 --requests 4000

   Opens --conns connections, pipelines up to --pipeline unanswered
   submits on each (so in-flight approaches conns * pipeline), sends
   --requests probe jobs total, then waits for the daemon to drain and
   accounts for every job. Exit 0 iff nothing was lost and no protocol
   errors occurred — sheds are an expected, *reported* outcome, not a
   failure. --json FILE additionally writes E17-style metric rows.

   Exit codes: 0 clean (lost = 0, errors = 0), 1 lost jobs / errors /
   unreachable daemon, 2 usage error. *)

module M = Era_metrics.Metrics
module Load = Era_serve.Load
module Job = Era_serve.Job

let () =
  let d = Load.default_config in
  let socket = ref d.Load.socket in
  let conns = ref d.Load.conns in
  let pipeline = ref d.Load.pipeline in
  let requests = ref d.Load.requests in
  let tenants = ref d.Load.tenants in
  let spin = ref 500 in
  let kind = ref "probe" in
  let json = ref None in
  let label = ref "load" in
  let spec =
    Arg.align
      [
        ("--socket", Arg.Set_string socket, "PATH Daemon Unix socket");
        ("--conns", Arg.Set_int conns, "N Concurrent connections");
        ( "--pipeline",
          Arg.Set_int pipeline,
          "N Max unanswered submits per connection" );
        ("--requests", Arg.Set_int requests, "N Total submits");
        ("--tenants", Arg.Set_int tenants, "N Round-robin tenant count");
        ("--spin", Arg.Set_int spin, "N Probe service time (spin units)");
        ( "--kind",
          Arg.Set_string kind,
          "K Job kind: probe (default) or explore" );
        ( "--json",
          Arg.String (fun f -> json := Some f),
          "FILE Also write E17 metric rows to FILE" );
        ("--label", Arg.Set_string label, "S Row label for --json output");
      ]
  in
  let usage = "usage: era_load [options]" in
  (match
     Arg.parse_argv ~current:(ref 0) Sys.argv spec
       (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
       usage
   with
  | () -> ()
  | exception Arg.Help msg ->
    print_string msg;
    exit 0
  | exception Arg.Bad msg ->
    let first_line =
      match String.index_opt msg '\n' with
      | Some i -> String.sub msg 0 i
      | None -> msg
    in
    Printf.eprintf "%s\nrun 'era_load --help' for usage\n" first_line;
    exit 2);
  let kind =
    match !kind with
    | "probe" -> Job.Probe { spin = !spin }
    | "explore" -> Job.default_explore ()
    | other ->
      Printf.eprintf
        "era_load: unknown --kind %S (expected probe or explore)\n" other;
      exit 2
  in
  let cfg =
    {
      Load.socket = !socket; conns = !conns; pipeline = !pipeline;
      requests = !requests; tenants = !tenants; kind;
      drain_timeout_s = d.Load.drain_timeout_s;
    }
  in
  match Load.run cfg with
  | Error e ->
    Fmt.epr "era_load: %s@." e;
    exit 1
  | Ok r ->
    Fmt.pr "%a@." Load.pp_result r;
    (match !json with
    | None -> ()
    | Some path ->
      let sink = M.sink () in
      M.add sink
        (M.row ~experiment:"E17" ~label:!label ~category:"serve"
           ~domains:!conns ~total_ops:r.Load.submitted
           ~elapsed_s:r.Load.submit_elapsed_s
           ~note:
             (if r.Load.lost = 0 && r.Load.errors = 0 then "clean"
              else "LOST JOBS")
           ~extra:
             [
               ("admitted", float_of_int r.Load.admitted);
               ("shed", float_of_int r.Load.shed);
               ("errors", float_of_int r.Load.errors);
               ("lost", float_of_int r.Load.lost);
               ("served", float_of_int r.Load.served);
               ("inflight_peak", float_of_int r.Load.inflight_peak);
               ("inflight_mean", r.Load.inflight_mean);
               ( "admit_rps",
                 float_of_int r.Load.responded
                 /. Float.max r.Load.submit_elapsed_s 1e-9 );
               ("admit_p50_us", r.Load.admit_p50_us);
               ("admit_p99_us", r.Load.admit_p99_us);
               ("drain_s", r.Load.drain_s);
             ]
           ());
      let n = M.flush sink ~mode:"full" ~path in
      Fmt.pr "wrote %d metric rows to %s@." n path);
    if r.Load.lost > 0 || r.Load.errors > 0 then exit 1

(* Command-line driver for the ERA reproduction experiments.

     dune exec bin/era_cli.exe -- <command> [options]

   Commands: figure1, figure2, robustness, applicability, access-aware,
   matrix, native, ablation, stall-fuzz, explore, replay, all.

   Parsing goes through Era_metrics.Run_config — the same Arg-based flag
   surface as bench/main.exe — so --schemes/--json/--domains/... behave
   identically in both front-ends. *)

module M = Era_metrics.Metrics
module Rc = Era_metrics.Run_config
module Explore = Era_explore.Explore

let commands =
  [
    "figure1"; "figure2"; "robustness"; "applicability"; "access-aware";
    "matrix"; "native"; "ablation"; "stall-fuzz"; "explore"; "replay"; "all";
  ]

(* [file_arg] admits the positional of [replay <counterexample.json>]. *)
let cfg = Rc.parse ~prog:"era_cli" ~commands ~file_arg:true ()

let schemes () =
  let all = Era_smr.Registry.all in
  (* Reject unknown names loudly rather than silently selecting nothing. *)
  List.iter
    (fun name ->
      if not (List.exists (fun s -> Era_smr.Registry.name_of s = name) all)
      then begin
        Fmt.epr "era_cli: unknown scheme %S (expected one of: %s)@." name
          (String.concat ", " Era_smr.Registry.names);
        exit 2
      end)
    cfg.Rc.schemes;
  List.filter (fun s -> Rc.selects_scheme cfg (Era_smr.Registry.name_of s)) all

let figure1 () =
  let rounds = Rc.rounds_or cfg 256 in
  List.iter
    (fun s -> Fmt.pr "%a@." Era.Figure1.pp_result (Era.Figure1.run ~rounds s))
    (schemes ())

let figure2 () =
  List.iter
    (fun s -> Fmt.pr "%a@." Era.Figure2.pp_result (Era.Figure2.run s))
    (schemes ())

let robustness () =
  List.iter
    (fun s ->
      Fmt.pr "%a@." Era.Robustness.pp_measurement (Era.Robustness.classify s))
    (schemes ())

let applicability () =
  let fuzz_runs = Rc.fuzz_or cfg 10 in
  List.iter
    (fun s ->
      List.iter
        (fun st ->
          Fmt.pr "%a@." Era.Applicability.pp_verdict
            (Era.Applicability.run ~fuzz_runs s st))
        Era.Applicability.structures)
    (schemes ())

let access_aware () =
  List.iter
    (fun r -> Fmt.pr "%a@." Era.Access_aware.pp_report r)
    (Era.Access_aware.audit_all ());
  Fmt.pr "negative control: %a@."
    Fmt.(list ~sep:semi (pair ~sep:(any " x") string int))
    (Era.Access_aware.negative_control ())

let matrix () =
  let rows = Era.Era_matrix.compute ~fuzz_runs:(Rc.fuzz_or cfg 10) () in
  Fmt.pr "%a@." Era.Era_matrix.pp_table rows;
  if not (Era.Era_matrix.theorem_holds rows) then exit 1

let ablation () =
  Fmt.pr "HP scan-threshold sweep (space vs scan frequency):@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Ablation.pp_hp_row r)
    (Era.Ablation.hp_sweep ());
  Fmt.pr "@.IBR epoch-granularity sweep (no tuning escapes Figure 1):@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Ablation.pp_ibr_row r)
    (Era.Ablation.ibr_sweep ())

let stall_fuzz () =
  let tries = Rc.tries_or cfg 30 in
  List.iter
    (fun ((module S : Era_smr.Smr_intf.S) as s) ->
      let r =
        Era.Applicability.stall_fuzz ~tries ~seed:1 s Era.Applicability.Harris
      in
      Fmt.pr "%-6s stall-fuzz on harris-list: %d/%d runs violated%a@." S.name
        r.Explore.fz_found r.Explore.fz_tries
        (Fmt.option (fun fmt v -> Fmt.pf fmt " (first: %a)" Explore.pp_violation v))
        r.Explore.fz_first)
    (schemes ())

(* ---------------------------------------------------------------- *)
(* Systematic exploration                                            *)
(* ---------------------------------------------------------------- *)

let one_scheme () =
  match cfg.Rc.schemes with
  | [ name ] -> (
    match Era_smr.Registry.find name with
    | Some s -> s
    | None ->
      Fmt.epr "era_cli: unknown scheme %S (expected one of: %s)@." name
        (String.concat ", " Era_smr.Registry.names);
      exit 2)
  | [] | _ :: _ :: _ ->
    Fmt.epr "era_cli explore: pick exactly one scheme with --scheme@.";
    exit 2

let structure_arg () =
  match cfg.Rc.structure with
  | None -> Era.Applicability.Harris
  | Some s -> (
    match Era.Applicability.structure_of_name s with
    | Some st -> st
    | None ->
      Fmt.epr "era_cli: unknown structure %S (expected one of: %s)@." s
        (String.concat ", "
           (List.map Era.Applicability.structure_name
              Era.Applicability.structures));
      exit 2)

let explore_cmd () =
  let ((module S : Era_smr.Smr_intf.S) as scheme) = one_scheme () in
  let structure = structure_arg () in
  let d = Explore.default_config in
  let config =
    {
      d with
      Explore.max_preemptions = Rc.preemptions_or cfg d.Explore.max_preemptions;
      max_runs = Rc.max_runs_or cfg d.Explore.max_runs;
      max_steps = Rc.steps_or cfg d.Explore.max_steps;
      domains = Rc.domains_or cfg d.Explore.domains;
    }
  in
  let seed = Rc.seed_or cfg 2 in
  Fmt.pr "exploring %s/%s (preemption bound %d, budget %d runs, %d domain%s)...@."
    S.name
    (Era.Applicability.structure_name structure)
    config.Explore.max_preemptions config.Explore.max_runs
    config.Explore.domains
    (if config.Explore.domains = 1 then "" else "s");
  let t0 = Unix.gettimeofday () in
  let r =
    Era.Applicability.explore ~config ~seed ?ops_per_thread:cfg.Rc.ops
      ?robustness_bound:cfg.Rc.robust_bound scheme structure
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Fmt.pr "%a (%.0f states/s)@." Explore.pp_stats r.Explore.res_stats
    (float_of_int r.Explore.res_stats.Explore.states
    /. Float.max elapsed_s 1e-9);
  match r.Explore.res_cex with
  | None ->
    Fmt.pr
      "no violation found within the bounds — every explored schedule is \
       safe@."
  | Some cex ->
    Fmt.pr "VIOLATION: %a@." Explore.pp_counterexample cex;
    let out =
      match cfg.Rc.out with
      | Some f -> f
      | None ->
        Fmt.str "counterexample_%s_%s.json" S.name
          (Era.Applicability.structure_name structure)
    in
    Explore.save ~file:out cex;
    Fmt.pr "counterexample written to %s (replay with: era_cli replay %s)@."
      out out

let replay_cmd () =
  let file =
    match cfg.Rc.file with
    | Some f -> f
    | None ->
      Fmt.epr "usage: era_cli replay <counterexample.json>@.";
      exit 2
  in
  match Explore.load ~file with
  | Error e ->
    Fmt.epr "era_cli replay: %s@." e;
    exit 2
  | Ok cex -> (
    match Era.Applicability.target_of_counterexample cex with
    | Error e ->
      Fmt.epr "era_cli replay: %s@." e;
      exit 2
    | Ok target ->
      Fmt.pr "replaying %a@." Explore.pp_counterexample cex;
      let r = Explore.replay target cex in
      (match r.Explore.rp_violation with
      | Some v when v.Explore.v_kind = cex.Explore.c_violation.Explore.v_kind
        ->
        Fmt.pr "reproduced: %a@." Explore.pp_violation v
      | Some v ->
        Fmt.pr "different violation on replay: %a@." Explore.pp_violation v;
        exit 1
      | None ->
        Fmt.pr "violation did NOT reproduce@.";
        exit 1))

let native () =
  let open Era_native.Throughput in
  let ops = Rc.ops_or cfg 100_000 in
  let domains = Rc.domains_or cfg 2 in
  let sink = M.sink () in
  let native_scheme s = Rc.selects_scheme cfg (scheme_name s) in
  List.iter
    (fun (kind, scheme, mix) ->
      if native_scheme scheme then begin
        let r = e8_row kind ~scheme mix ~domains ~ops_per_domain:ops in
        Fmt.pr "%a@." pp_result r;
        M.add sink (to_row ~experiment:"E8" ~category:"native-throughput" r)
      end)
    [
      (Harris, `Ebr, Churn); (Michael, `Ebr, Churn); (Michael, `Hp, Churn);
      (Harris, `Ebr, Read_heavy); (Michael, `Ebr, Read_heavy);
      (Michael, `Hp, Read_heavy);
    ];
  List.iter
    (fun s ->
      if native_scheme (s :> [ `Ebr | `Hp | `Ibr | `None ]) then begin
        let r = e9_row ~scheme:s ~churn_ops:ops in
        Fmt.pr "%a@." pp_result r;
        M.add sink (to_row ~experiment:"E9" ~category:"native-backlog" r)
      end)
    [ `Ebr; `Hp; `Ibr ];
  match cfg.Rc.json with
  | None -> ()
  | Some path ->
    let n = M.flush sink ~mode:(Rc.mode cfg) ~path in
    Fmt.pr "wrote %d metric rows to %s@." n path

let all () =
  Fmt.pr "== Figure 1 ==@.";
  figure1 ();
  Fmt.pr "@.== Figure 2 ==@.";
  figure2 ();
  Fmt.pr "@.== Robustness ==@.";
  robustness ();
  Fmt.pr "@.== Applicability ==@.";
  applicability ();
  Fmt.pr "@.== Access-aware audit ==@.";
  access_aware ();
  Fmt.pr "@.== ERA matrix ==@.";
  matrix ();
  Fmt.pr "@.== Native ==@.";
  native ()

let () =
  match cfg.Rc.command with
  | Some "figure1" -> figure1 ()
  | Some "figure2" -> figure2 ()
  | Some "robustness" -> robustness ()
  | Some "applicability" -> applicability ()
  | Some "access-aware" -> access_aware ()
  | Some "matrix" -> matrix ()
  | Some "native" -> native ()
  | Some "ablation" -> ablation ()
  | Some "stall-fuzz" -> stall_fuzz ()
  | Some "explore" -> explore_cmd ()
  | Some "replay" -> replay_cmd ()
  | Some "all" -> all ()
  | Some other ->
    (* unreachable: Run_config validated the command list *)
    Fmt.epr "era_cli: unknown command %S@." other;
    exit 2
  | None ->
    Fmt.epr "usage: era_cli <command> [options]@.commands: %s@."
      (String.concat ", " commands);
    exit 2

(* Command-line driver for the ERA reproduction experiments.

     dune exec bin/era_cli.exe -- <command> [options]

   Commands: figure1, figure2, robustness, applicability, access-aware,
   matrix, native, ablation, stall-fuzz, explore, replay, trace, serve,
   submit, jobs, all.

   Parsing goes through Era_metrics.Run_config — the same Arg-based flag
   surface as bench/main.exe — so --schemes/--json/--domains/... behave
   identically in both front-ends.

   Exit codes: 0 success, 1 a run/check failed (violation did not
   reproduce, theorem matrix broken, unreadable input file), 2 usage
   error. *)

module M = Era_metrics.Metrics
module Rc = Era_metrics.Run_config
module Explore = Era_explore.Explore
module Tracer = Era_obs.Tracer
module Registry = Era_obs.Registry
module Sim_trace = Era_obs.Sim_trace

let commands =
  [
    "figure1"; "figure2"; "robustness"; "applicability"; "access-aware";
    "matrix"; "native"; "ablation"; "stall-fuzz"; "explore"; "replay";
    "trace"; "serve"; "submit"; "jobs"; "all";
  ]

(* [file_arg] admits the positionals of [replay <counterexample.json>],
   [trace <scenario>] and [submit <job-kind>]. *)
let cfg = Rc.parse ~prog:"era_cli" ~commands ~file_arg:true ()

let schemes () =
  let all = Era_smr.Registry.all in
  (* Reject unknown names loudly rather than silently selecting nothing. *)
  List.iter
    (fun name ->
      if not (List.exists (fun s -> Era_smr.Registry.name_of s = name) all)
      then begin
        Fmt.epr "era_cli: unknown scheme %S (expected one of: %s)@." name
          (String.concat ", " Era_smr.Registry.names);
        exit 2
      end)
    cfg.Rc.schemes;
  List.filter (fun s -> Rc.selects_scheme cfg (Era_smr.Registry.name_of s)) all

let figure1 () =
  let rounds = Rc.rounds_or cfg 256 in
  List.iter
    (fun s -> Fmt.pr "%a@." Era.Figure1.pp_result (Era.Figure1.run ~rounds s))
    (schemes ())

let figure2 () =
  List.iter
    (fun s -> Fmt.pr "%a@." Era.Figure2.pp_result (Era.Figure2.run s))
    (schemes ())

let robustness () =
  List.iter
    (fun s ->
      Fmt.pr "%a@." Era.Robustness.pp_measurement (Era.Robustness.classify s))
    (schemes ())

let applicability () =
  let fuzz_runs = Rc.fuzz_or cfg 10 in
  List.iter
    (fun s ->
      List.iter
        (fun st ->
          Fmt.pr "%a@." Era.Applicability.pp_verdict
            (Era.Applicability.run ~fuzz_runs s st))
        Era.Applicability.structures)
    (schemes ())

let access_aware () =
  List.iter
    (fun r -> Fmt.pr "%a@." Era.Access_aware.pp_report r)
    (Era.Access_aware.audit_all ());
  Fmt.pr "negative control: %a@."
    Fmt.(list ~sep:semi (pair ~sep:(any " x") string int))
    (Era.Access_aware.negative_control ())

let matrix () =
  let rows = Era.Era_matrix.compute ~fuzz_runs:(Rc.fuzz_or cfg 10) () in
  Fmt.pr "%a@." Era.Era_matrix.pp_table rows;
  if not (Era.Era_matrix.theorem_holds rows) then exit 1

let ablation () =
  Fmt.pr "HP scan-threshold sweep (space vs scan frequency):@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Ablation.pp_hp_row r)
    (Era.Ablation.hp_sweep ());
  Fmt.pr "@.IBR epoch-granularity sweep (no tuning escapes Figure 1):@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Ablation.pp_ibr_row r)
    (Era.Ablation.ibr_sweep ())

let stall_fuzz () =
  let tries = Rc.tries_or cfg 30 in
  List.iter
    (fun ((module S : Era_smr.Smr_intf.S) as s) ->
      let r =
        Era.Applicability.stall_fuzz ~tries ~seed:1 s Era.Applicability.Harris
      in
      Fmt.pr "%-6s stall-fuzz on harris-list: %d/%d runs violated%a@." S.name
        r.Explore.fz_found r.Explore.fz_tries
        (Fmt.option (fun fmt v -> Fmt.pf fmt " (first: %a)" Explore.pp_violation v))
        r.Explore.fz_first)
    (schemes ())

(* ---------------------------------------------------------------- *)
(* Systematic exploration                                            *)
(* ---------------------------------------------------------------- *)

let one_scheme () =
  match cfg.Rc.schemes with
  | [ name ] -> (
    match Era_smr.Registry.find name with
    | Some s -> s
    | None ->
      Fmt.epr "era_cli: unknown scheme %S (expected one of: %s)@." name
        (String.concat ", " Era_smr.Registry.names);
      exit 2)
  | [] | _ :: _ :: _ ->
    Fmt.epr "era_cli explore: pick exactly one scheme with --scheme@.";
    exit 2

let structure_arg () =
  match cfg.Rc.structure with
  | None -> Era.Applicability.Harris
  | Some s -> (
    match Era.Applicability.structure_of_name s with
    | Some st -> st
    | None ->
      Fmt.epr "era_cli: unknown structure %S (expected one of: %s)@." s
        (String.concat ", "
           (List.map Era.Applicability.structure_name
              Era.Applicability.structures));
      exit 2)

(* Attach the tracer to a replay's internally built scheduler — the
   [?on_sched] hook of [Explore.run_steps]. *)
let attach_to_replay tr ~process sched =
  Tracer.set_process_name tr process;
  ignore (Sim_trace.attach tr (Era_sched.Sched.monitor sched) : unit -> unit);
  Sim_trace.attach_sched tr sched

let write_trace tr ~file =
  Tracer.write ~file tr;
  Fmt.pr "trace written to %s (%d events%s) — open in Perfetto \
          (https://ui.perfetto.dev) or chrome://tracing@."
    file (Tracer.length tr)
    (match Tracer.dropped tr with
    | 0 -> ""
    | d -> Fmt.str ", %d oldest dropped" d)

let explore_cmd () =
  let ((module S : Era_smr.Smr_intf.S) as scheme) = one_scheme () in
  let structure = structure_arg () in
  let structure_n = Era.Applicability.structure_name structure in
  let d = Explore.default_config in
  let t0 = Unix.gettimeofday () in
  let last_progress = ref None in
  let config =
    {
      d with
      Explore.max_preemptions = Rc.preemptions_or cfg d.Explore.max_preemptions;
      max_runs = Rc.max_runs_or cfg d.Explore.max_runs;
      max_steps = Rc.steps_or cfg d.Explore.max_steps;
      domains = Rc.domains_or cfg d.Explore.domains;
      dpor = cfg.Rc.dpor;
      steal = cfg.Rc.steal;
      progress_every = Option.value cfg.Rc.heartbeat ~default:0;
      on_progress =
        (match cfg.Rc.heartbeat with
        | None -> None
        | Some _ ->
          Some
            (fun (p : Explore.progress) ->
              last_progress := Some p;
              let elapsed = Unix.gettimeofday () -. t0 in
              Fmt.pr
                "[heartbeat] level=%d runs=%d (budget left %d) states=%d \
                 (%.0f/s) pruned=%d frontier=%d(+%d deferred) fp=%d \
                 domain-runs=[%a]@."
                p.Explore.pg_level p.Explore.pg_runs
                p.Explore.pg_budget_left p.Explore.pg_states
                (float_of_int p.Explore.pg_states /. Float.max elapsed 1e-9)
                p.Explore.pg_pruned p.Explore.pg_frontier
                p.Explore.pg_deferred p.Explore.pg_fp_size
                Fmt.(array ~sep:comma int)
                p.Explore.pg_per_domain_runs));
    }
  in
  let seed = Rc.seed_or cfg 2 in
  Fmt.pr
    "exploring %s/%s (preemption bound %d, budget %d runs, %d domain%s%s%s)...@."
    S.name structure_n
    config.Explore.max_preemptions config.Explore.max_runs
    config.Explore.domains
    (if config.Explore.domains = 1 then "" else "s")
    (if config.Explore.dpor then ", dpor" else "")
    (if config.Explore.steal && config.Explore.domains > 1 then ", stealing"
     else "");
  let r =
    Era.Applicability.explore ~config ~seed ?ops_per_thread:cfg.Rc.ops
      ~lincheck:cfg.Rc.lincheck ?robustness_bound:cfg.Rc.robust_bound scheme
      structure
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let stats = r.Explore.res_stats in
  Fmt.pr "%a (%.0f states/s)@." Explore.pp_stats stats
    (float_of_int stats.Explore.states /. Float.max elapsed_s 1e-9);
  (* The heartbeat sidecar: final search stats plus run-shape gauges, in
     the registry JSON format shared with every other metrics export. *)
  (match cfg.Rc.heartbeat with
  | None -> ()
  | Some _ ->
    let reg = Explore.stats_registry stats in
    Registry.set (Registry.gauge reg "explore_elapsed_s") elapsed_s;
    Registry.set
      (Registry.gauge reg "explore_states_per_s")
      (float_of_int stats.Explore.states /. Float.max elapsed_s 1e-9);
    (match !last_progress with
    | None -> ()
    | Some p ->
      Registry.set_int
        (Registry.gauge reg "explore_frontier_last")
        p.Explore.pg_frontier;
      Registry.set_int
        (Registry.gauge reg "explore_fp_size_last")
        p.Explore.pg_fp_size);
    let hb_file = Fmt.str "heartbeat_%s_%s.json" S.name structure_n in
    Registry.write ~file:hb_file reg;
    Fmt.pr "heartbeat sidecar written to %s@." hb_file);
  match r.Explore.res_cex with
  | None ->
    Fmt.pr
      "no violation found within the bounds — every explored schedule is \
       safe@.";
    if cfg.Rc.trace then
      Fmt.pr "(--trace: no counterexample to capture)@."
  | Some cex ->
    Fmt.pr "VIOLATION: %a@." Explore.pp_counterexample cex;
    let out =
      match cfg.Rc.out with
      | Some f -> f
      | None -> Fmt.str "counterexample_%s_%s.json" S.name structure_n
    in
    Explore.save ~file:out cex;
    Fmt.pr "counterexample written to %s (replay with: era_cli replay %s)@."
      out out;
    if cfg.Rc.trace then begin
      match Era.Applicability.target_of_counterexample cex with
      | Error e ->
        Fmt.epr "era_cli explore: trace capture failed: %s@." e;
        exit 1
      | Ok target ->
        let tr = Tracer.create ~capacity:(1 lsl 20) () in
        let process = Fmt.str "counterexample %s" cex.Explore.c_target in
        ignore
          (Explore.replay ~on_sched:(attach_to_replay tr ~process) target cex);
        write_trace tr ~file:(Fmt.str "trace_%s_%s.json" S.name structure_n)
    end

(* [trace <scenario|counterexample.json>] — run a seeded scenario (or a
   saved counterexample replay) with the tracer attached and write a
   Perfetto-loadable Chrome trace-event JSON. *)
let trace_cmd () =
  let what =
    match cfg.Rc.file with
    | Some f -> f
    | None ->
      Fmt.epr
        "usage: era_cli trace <figure1|figure2|counterexample.json> \
         [--scheme S] [--out FILE]@.";
      exit 2
  in
  let tr = Tracer.create ~capacity:(1 lsl 20) () in
  let default_out =
    match what with
    | "figure1" ->
      let scheme = one_scheme () in
      let rounds = Rc.rounds_or cfg 64 in
      let r = Era.Figure1.run ~tracer:tr ~rounds scheme in
      Fmt.pr "%a@." Era.Figure1.pp_result r;
      Fmt.str "trace_figure1_%s.json" r.Era.Figure1.scheme
    | "figure2" ->
      let r = Era.Figure2.run ~tracer:tr (one_scheme ()) in
      Fmt.pr "%a@." Era.Figure2.pp_result r;
      Fmt.str "trace_figure2_%s.json" r.Era.Figure2.scheme
    | file -> (
      match Explore.load ~file with
      | Error e ->
        Fmt.epr "era_cli trace: %s@." e;
        exit 1
      | Ok cex -> (
        match Era.Applicability.target_of_counterexample cex with
        | Error e ->
          Fmt.epr "era_cli trace: %s@." e;
          exit 1
        | Ok target ->
          let process = Fmt.str "counterexample %s" cex.Explore.c_target in
          let r =
            Explore.replay ~on_sched:(attach_to_replay tr ~process) target cex
          in
          (match r.Explore.rp_violation with
          | Some v -> Fmt.pr "replayed violation: %a@." Explore.pp_violation v
          | None -> Fmt.pr "replay finished without a violation@.");
          Fmt.str "trace_%s.json"
            (String.map
               (fun c -> if c = '/' then '_' else c)
               cex.Explore.c_target)))
  in
  let out = Option.value cfg.Rc.out ~default:default_out in
  write_trace tr ~file:out

let replay_cmd () =
  let file =
    match cfg.Rc.file with
    | Some f -> f
    | None ->
      Fmt.epr "usage: era_cli replay <counterexample.json>@.";
      exit 2
  in
  match Explore.load ~file with
  | Error e ->
    Fmt.epr "era_cli replay: %s@." e;
    exit 1
  | Ok cex -> (
    match Era.Applicability.target_of_counterexample cex with
    | Error e ->
      Fmt.epr "era_cli replay: %s@." e;
      exit 1
    | Ok target ->
      Fmt.pr "replaying %a@." Explore.pp_counterexample cex;
      let r = Explore.replay target cex in
      (match r.Explore.rp_violation with
      | Some v when v.Explore.v_kind = cex.Explore.c_violation.Explore.v_kind
        ->
        Fmt.pr "reproduced: %a@." Explore.pp_violation v
      | Some v ->
        Fmt.pr "different violation on replay: %a@." Explore.pp_violation v;
        exit 1
      | None ->
        Fmt.pr "violation did NOT reproduce@.";
        exit 1))

let native () =
  let open Era_native.Throughput in
  let module Flight = Era_obs.Flight in
  let ops = Rc.ops_or cfg 100_000 in
  let domains = Rc.domains_or cfg 2 in
  let sink = M.sink () in
  let native_scheme s = Rc.selects_scheme cfg (scheme_name s) in
  (* --flight FILE: each recorded row gets its own recorder and merged
     Perfetto trace. The first recorded row writes FILE; further rows
     write FILE with the row label spliced in, so a multi-row run never
     silently overwrites. *)
  let flight_rows = ref 0 in
  let with_flight ~ndomains ~label (run : Flight.t -> result) =
    match cfg.Rc.flight with
    | None -> run Flight.null
    | Some base ->
      let flight = Flight.create ~ndomains () in
      let r = run flight in
      let file =
        if !flight_rows = 0 then base
        else
          let safe =
            String.map
              (fun c ->
                match c with
                | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
                | _ -> '-')
              label
          in
          Printf.sprintf "%s-%s.json" (Filename.remove_extension base) safe
      in
      incr flight_rows;
      Flight.write ~file flight;
      let reg = Era_obs.Registry.create () in
      Flight.to_registry flight reg;
      Fmt.pr "  flight: %d events (%d dropped) -> %s@."
        (Flight.total_events flight) (Flight.dropped flight) file;
      Fmt.pr "%a@." Era_obs.Registry.pp reg;
      r
  in
  (if cfg.Rc.stall then
     (* --stall: only the E9 stalled-domain rows (domain 0 parks
        mid-operation; two churn domains drive the backlog). *)
     List.iter
       (fun s ->
         if native_scheme (s :> [ `Debra | `Ebr | `Hp | `Ibr | `None ]) then begin
           let label = "stall-" ^ scheme_name (s :> [ `Debra | `Ebr | `Hp | `Ibr | `None ]) in
           let r =
             with_flight ~ndomains:3 ~label (fun flight ->
                 e9_row ~flight ~scheme:s ~churn_ops:ops ())
           in
           Fmt.pr "%a@." pp_result r;
           M.add sink (to_row ~experiment:"E9" ~category:"native-backlog" r)
         end)
       [ `Ebr; `Hp; `Ibr; `Debra ]
   else
     match Rc.(cfg.keys, cfg.zipf, cfg.mix) with
  | (Some _, _, _) | (_, Some _, _) | (_, _, Some _) ->
    (* --keys/--zipf/--mix: one E16-style row per scheme on the
       requested workload instead of the standard E8 grid. *)
    let contains_pct =
      match cfg.Rc.mix with
      | None -> 90
      | Some m -> (
        match contains_pct_of_mix m with
        | Ok p -> p
        | Error e ->
          Fmt.epr "era_cli native: --mix: %s@." e;
          exit 2)
    in
    let workload =
      custom_workload ?zipf:cfg.Rc.zipf
        ~keys:(Option.value cfg.Rc.keys ~default:1024)
        ~contains_pct ()
    in
    List.iter
      (fun scheme ->
        if native_scheme scheme then begin
          let r =
            with_flight ~ndomains:domains
              ~label:("michael-" ^ scheme_name scheme)
              (fun flight ->
                e16_row Michael ~flight ~scheme ~workload ~domains
                  ~ops_per_domain:ops)
          in
          Fmt.pr "%a@." pp_result r;
          M.add sink (to_row ~experiment:"E16" ~category:"native-throughput" r)
        end)
      [ `None; `Ebr; `Hp; `Ibr; `Debra ]
  | None, None, None ->
    List.iter
      (fun (kind, scheme, mix, label) ->
        if native_scheme scheme then begin
          let r =
            with_flight ~ndomains:domains ~label (fun flight ->
                e8_row kind ~flight ~scheme mix ~domains ~ops_per_domain:ops)
          in
          Fmt.pr "%a@." pp_result r;
          M.add sink (to_row ~experiment:"E8" ~category:"native-throughput" r)
        end)
      [
        (Harris, `Ebr, Churn, "harris-ebr-churn");
        (Michael, `Ebr, Churn, "michael-ebr-churn");
        (Michael, `Hp, Churn, "michael-hp-churn");
        (Harris, `Ebr, Read_heavy, "harris-ebr-read");
        (Michael, `Ebr, Read_heavy, "michael-ebr-read");
        (Michael, `Hp, Read_heavy, "michael-hp-read");
      ];
    List.iter
      (fun s ->
        if native_scheme (s :> [ `Debra | `Ebr | `Hp | `Ibr | `None ]) then begin
          let label =
            "stall-" ^ scheme_name (s :> [ `Debra | `Ebr | `Hp | `Ibr | `None ])
          in
          let r =
            with_flight ~ndomains:3 ~label (fun flight ->
                e9_row ~flight ~scheme:s ~churn_ops:ops ())
          in
          Fmt.pr "%a@." pp_result r;
          M.add sink (to_row ~experiment:"E9" ~category:"native-backlog" r)
        end)
      [ `Ebr; `Hp; `Ibr; `Debra ]);
  match cfg.Rc.json with
  | None -> ()
  | Some path ->
    let n = M.flush sink ~mode:(Rc.mode cfg) ~path in
    Fmt.pr "wrote %d metric rows to %s@." n path

(* ---------------------------------------------------------------- *)
(* Serving: era_serve daemon + client commands                       *)
(* ---------------------------------------------------------------- *)

module Daemon = Era_serve.Daemon
module Client = Era_serve.Client
module Job = Era_serve.Job

let daemon_config () =
  let d = Daemon.default_config in
  {
    Daemon.socket_path =
      Option.value cfg.Rc.socket ~default:d.Daemon.socket_path;
    workers = Option.value cfg.Rc.workers ~default:d.Daemon.workers;
    global_cap = Option.value cfg.Rc.queue_cap ~default:d.Daemon.global_cap;
    tenant_cap = Option.value cfg.Rc.tenant_cap ~default:d.Daemon.tenant_cap;
    store_dir = Option.value cfg.Rc.store ~default:d.Daemon.store_dir;
  }

let serve_cmd () =
  let dc = daemon_config () in
  let t = Daemon.start dc in
  Fmt.pr
    "era_serve listening on %s (%d worker%s, queue cap %d global / %d per \
     tenant, store %s)@.stop with: era_cli jobs --shutdown --socket %s@."
    dc.Daemon.socket_path dc.Daemon.workers
    (if dc.Daemon.workers = 1 then "" else "s")
    dc.Daemon.global_cap dc.Daemon.tenant_cap dc.Daemon.store_dir
    dc.Daemon.socket_path;
  Daemon.wait t;
  Fmt.pr "era_serve stopped@."

let with_client k =
  let socket =
    Option.value cfg.Rc.socket ~default:Daemon.default_config.Daemon.socket_path
  in
  (* A few connect retries cover the daemon-still-booting race when
     scripts background [serve] and immediately submit. *)
  match Client.connect ~retries:20 ~retry_delay_s:0.25 ~socket () with
  | Error e ->
    Fmt.epr "era_cli: %s@." e;
    exit 1
  | Ok cl ->
    let r = k cl in
    Client.close cl;
    r

let submit_kind () =
  let scheme_or d =
    match cfg.Rc.schemes with
    | [] -> d
    | [ s ] -> s
    | _ :: _ :: _ ->
      Fmt.epr "era_cli submit: pick at most one scheme with --scheme@.";
      exit 2
  in
  match cfg.Rc.file with
  | None | Some "explore" ->
    let d = Explore.default_config in
    Job.Explore
      {
        scheme = scheme_or "hp";
        structure = Option.value cfg.Rc.structure ~default:"harris-list";
        preemptions =
          Rc.preemptions_or cfg d.Explore.max_preemptions;
        max_runs = Rc.max_runs_or cfg 20_000;
        steps = Rc.steps_or cfg d.Explore.max_steps;
        seed = Rc.seed_or cfg 2;
        ops = cfg.Rc.ops;
        robust_bound = cfg.Rc.robust_bound;
      }
  | Some "figure1" ->
    Job.Figure1 { scheme = scheme_or "ebr"; rounds = Rc.rounds_or cfg 256 }
  | Some "figure2" -> Job.Figure2 { scheme = scheme_or "ebr" }
  | Some "probe" ->
    Job.Probe { spin = Rc.ops_or cfg 1000 }
  | Some other ->
    Fmt.epr
      "era_cli submit: unknown job kind %S (expected explore, figure1, \
       figure2 or probe)@."
      other;
    exit 2

let print_job j =
  Fmt.pr "%s@." (Era_metrics.Json.to_string ~minify:false j)

let submit_cmd () =
  let kind = submit_kind () in
  let tenant = Option.value cfg.Rc.tenant ~default:"default" in
  with_client (fun cl ->
      match Client.submit cl ~tenant kind with
      | Error e ->
        Fmt.epr "era_cli submit: %s@." e;
        exit 1
      | Ok (Client.Shed reason) ->
        Fmt.pr "shed (%s): the daemon is at capacity — retry later@." reason;
        exit 1
      | Ok (Client.Admitted id) ->
        Fmt.pr "admitted as job %d (%s, tenant %s)@." id (Job.kind_label kind)
          tenant;
        if cfg.Rc.wait then begin
          match Client.wait_job cl id with
          | Error e ->
            Fmt.epr "era_cli submit: %s@." e;
            exit 1
          | Ok j ->
            print_job j;
            let status =
              Option.value
                Era_metrics.Json.(Option.bind (member "status" j) to_str)
                ~default:""
            in
            if status <> "done" then exit 1
        end)

let jobs_cmd () =
  with_client (fun cl ->
      if cfg.Rc.shutdown then begin
        match Client.shutdown cl ~drain:(not cfg.Rc.now) with
        | Error e ->
          Fmt.epr "era_cli jobs: %s@." e;
          exit 1
        | Ok () ->
          Fmt.pr "shutdown requested (%s)@."
            (if cfg.Rc.now then "abandoning the backlog"
             else "draining the backlog")
      end
      else
        match cfg.Rc.follow with
        | Some id -> (
          (* Streaming follow: heartbeat lines as the daemon pushes
             them, then the final summary. *)
          match
            Client.follow cl id ~on_heartbeat:(fun hb ->
                Fmt.pr "heartbeat %s@."
                  (Era_metrics.Json.to_string ~minify:true hb))
          with
          | Error e ->
            Fmt.epr "era_cli jobs: %s@." e;
            exit 1
          | Ok j -> print_job j)
        | None -> (
          match (Client.stats cl, Client.jobs cl) with
          | Error e, _ | _, Error e ->
            Fmt.epr "era_cli jobs: %s@." e;
            exit 1
          | Ok stats, Ok jobs ->
            Fmt.pr "stats: %s@."
              (Era_metrics.Json.to_string ~minify:true stats);
            List.iter print_job jobs))

let all () =
  Fmt.pr "== Figure 1 ==@.";
  figure1 ();
  Fmt.pr "@.== Figure 2 ==@.";
  figure2 ();
  Fmt.pr "@.== Robustness ==@.";
  robustness ();
  Fmt.pr "@.== Applicability ==@.";
  applicability ();
  Fmt.pr "@.== Access-aware audit ==@.";
  access_aware ();
  Fmt.pr "@.== ERA matrix ==@.";
  matrix ();
  Fmt.pr "@.== Native ==@.";
  native ()

let () =
  match cfg.Rc.command with
  | Some "figure1" -> figure1 ()
  | Some "figure2" -> figure2 ()
  | Some "robustness" -> robustness ()
  | Some "applicability" -> applicability ()
  | Some "access-aware" -> access_aware ()
  | Some "matrix" -> matrix ()
  | Some "native" -> native ()
  | Some "ablation" -> ablation ()
  | Some "stall-fuzz" -> stall_fuzz ()
  | Some "explore" -> explore_cmd ()
  | Some "replay" -> replay_cmd ()
  | Some "trace" -> trace_cmd ()
  | Some "serve" -> serve_cmd ()
  | Some "submit" -> submit_cmd ()
  | Some "jobs" -> jobs_cmd ()
  | Some "all" -> all ()
  | Some other ->
    (* unreachable: Run_config validated the command list *)
    Fmt.epr "era_cli: unknown command %S@." other;
    exit 2
  | None ->
    Fmt.epr "usage: era_cli <command> [options]@.commands: %s@."
      (String.concat ", " commands);
    exit 2

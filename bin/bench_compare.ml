(* The tier-1 perf gate: diff two BENCH_*.json files.

     dune exec bin/bench_compare.exe -- OLD.json NEW.json \
       [--max-regression PCT] [--backlog-factor F] [--backlog-slack N] \
       [--max-suite-regression PCT] [--suite-slack S] [--require KEY]...

   Exit status: 0 when every native-throughput row of NEW is within the
   regression tolerance of OLD, no native row's max backlog blew up, no
   suite-timing row slowed past its tolerance, and every --require'd key
   is present in both files; 1 on any regression, blow-up, slowdown, or
   missing row; 2 on usage/parse errors. --require guards gate rows that
   MUST exist (e.g. B6/trace_off_overhead): without it, deleting the row
   from both files would silently pass. *)

module M = Era_metrics.Metrics
module D = Era_metrics.Bench_diff

let () =
  let max_regression = ref 25. in
  let backlog_factor = ref 2. in
  let backlog_slack = ref 256 in
  let max_suite_regression = ref 75. in
  let suite_slack = ref 0.05 in
  let required = ref [] in
  let files = ref [] in
  let spec =
    Arg.align
      [
        ( "--max-regression",
          Arg.Set_float max_regression,
          "PCT Throughput regression tolerance in percent (default 25)" );
        ( "--backlog-factor",
          Arg.Set_float backlog_factor,
          "F Allowed multiplicative max-backlog growth (default 2.0)" );
        ( "--backlog-slack",
          Arg.Set_int backlog_slack,
          "N Allowed additive max-backlog growth (default 256)" );
        ( "--max-suite-regression",
          Arg.Set_float max_suite_regression,
          "PCT Suite wall-clock regression tolerance in percent (default 75)"
        );
        ( "--suite-slack",
          Arg.Set_float suite_slack,
          "S Additive suite wall-clock slack in seconds (default 0.05)" );
        ( "--require",
          Arg.String (fun k -> required := k :: !required),
          "KEY Fail unless row KEY (experiment/label) exists in both files \
           (repeatable)" );
      ]
  in
  let usage = "usage: bench_compare OLD.json NEW.json [options]" in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  let old_file, new_file =
    match List.rev !files with
    | [ o; n ] -> (o, n)
    | _ ->
      prerr_endline usage;
      exit 2
  in
  let load name path =
    match M.load path with
    | Ok r -> r
    | Error msg ->
      Printf.eprintf "bench_compare: cannot load %s file %s: %s\n" name path
        msg;
      exit 2
  in
  let old_report = load "old" old_file in
  let new_report = load "new" new_file in
  let v =
    D.diff ~max_regression_pct:!max_regression
      ~backlog_factor:!backlog_factor ~backlog_slack:!backlog_slack
      ~max_suite_regression_pct:!max_suite_regression
      ~suite_slack_s:!suite_slack ~old_report ~new_report ()
  in
  Format.printf "%s (%s) vs %s (%s)@." old_file
    old_report.M.manifest.M.git_rev new_file new_report.M.manifest.M.git_rev;
  Format.printf "%a" D.pp v;
  let has (r : M.report) k =
    List.exists (fun row -> M.key row = k) r.M.rows
  in
  let unmet =
    List.filter
      (fun k -> not (has old_report k && has new_report k))
      (List.rev !required)
  in
  List.iter
    (fun k ->
      Format.printf "  REQUIRED ROW MISSING %s (old:%b new:%b)@." k
        (has old_report k) (has new_report k))
    unmet;
  exit (if D.ok v && unmet = [] then 0 else 1)
